// Package sim is a process-oriented discrete-event simulation kernel.
//
// It is the substitute for CSIM, the proprietary simulation library the
// paper's evaluation is built on. The modelling primitives mirror CSIM's:
//
//   - a Kernel owns the virtual clock and the future event list;
//   - a Proc is a simulated process (one goroutine) that advances virtual
//     time with Hold and contends for facilities with Resource;
//   - a Resource is a FCFS facility (wireless channel, disk arm, ...) with
//     fixed capacity, utilization accounting, and queue statistics.
//
// Determinism: although each process is a goroutine, exactly one goroutine
// runs at any instant — the kernel resumes a process and then blocks until
// that process yields (by holding, queueing on a resource, or terminating).
// Events at equal timestamps are dispatched in schedule order. Simulations
// are therefore exactly reproducible for a given seed, which the tests and
// EXPERIMENTS.md rely on.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a future-event-list entry: either "resume proc" or "call fn".
type event struct {
	at   float64
	seq  uint64 // schedule order; ties broken FIFO
	proc *Proc
	fn   func()
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel drives a single simulation run. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now    float64
	seq    uint64
	events eventHeap
	yield  chan struct{}
	live   map[*Proc]struct{}
	nsteps uint64
}

// NewKernel returns a kernel with the clock at zero and an empty event list.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Steps returns the number of events dispatched so far. It is exposed for
// kernel benchmarks and runaway-simulation guards in tests.
func (k *Kernel) Steps() uint64 { return k.nsteps }

// schedule appends an event to the future event list.
func (k *Kernel) schedule(at float64, p *Proc, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (at=%g, now=%g)", at, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, proc: p, fn: fn})
}

// After schedules fn to run at now+d in kernel context. fn must not block;
// it is intended for lightweight timers (statistics sampling, LRD aging).
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, nil, fn)
}

// At schedules fn to run at absolute time t (clamped to now) in kernel
// context. fn must not block.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.schedule(t, nil, fn)
}

// Spawn creates a process that starts at the current virtual time.
// The body runs in its own goroutine but under the kernel's one-runnable
// discipline; it may call Hold, Acquire, and friends.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, body)
}

// SpawnAt creates a process that starts at virtual time t (clamped to now).
func (k *Kernel) SpawnAt(t float64, name string, body func(*Proc)) *Proc {
	if body == nil {
		panic("sim: SpawnAt with nil body")
	}
	if t < k.now {
		t = k.now
	}
	p := &Proc{
		kernel: k,
		name:   name,
		body:   body,
		resume: make(chan struct{}),
	}
	k.live[p] = struct{}{}
	k.schedule(t, p, nil)
	return p
}

// Run dispatches events until the event list is empty or the clock would
// pass `until`. It returns the final clock value. Processes still blocked
// when Run returns remain suspended; call Drain to terminate them.
func (k *Kernel) Run(until float64) float64 {
	for len(k.events) > 0 {
		if k.events[0].at > until {
			k.now = until
			return k.now
		}
		ev := heap.Pop(&k.events).(*event)
		k.now = ev.at
		k.nsteps++
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.proc != nil:
			p := ev.proc
			if p.done || p.killed {
				continue
			}
			if !p.started {
				p.started = true
				go p.run()
			} else {
				p.resume <- struct{}{}
			}
			<-k.yield
		}
	}
	return k.now
}

// RunAll dispatches events until the event list is empty.
func (k *Kernel) RunAll() float64 { return k.Run(math.Inf(1)) }

// Drain terminates every live process. Suspended processes are woken with a
// kill flag and unwind via a recovered panic; processes that have not yet
// started are simply discarded. Call it once per simulation after Run so no
// goroutines outlive the run.
func (k *Kernel) Drain() {
	for p := range k.live {
		if p.done {
			delete(k.live, p)
			continue
		}
		p.killed = true
		if p.started {
			p.resume <- struct{}{}
			<-k.yield
		}
		delete(k.live, p)
	}
	// Discard the remaining future events; the simulation is over.
	k.events = nil
}

// LiveProcs reports the number of processes that have been spawned and have
// not yet terminated.
func (k *Kernel) LiveProcs() int { return len(k.live) }
