package experiment_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// Run one simulation: the paper's Table-1 defaults scaled down to a tiny
// deterministic run.
func ExampleRun() {
	res := experiment.Run(experiment.Config{
		Seed:        1,
		NumObjects:  200,
		NumClients:  2,
		Days:        0.02,
		Granularity: core.HybridCaching,
		QueryKind:   workload.Associative,
		Heat:        experiment.SkewedHeat,
		UpdateProb:  0.1,
	})
	fmt.Println("queries:", res.QueriesIssued)
	fmt.Println("deterministic:", res.QueriesIssued ==
		experiment.Run(experiment.Config{
			Seed:        1,
			NumObjects:  200,
			NumClients:  2,
			Days:        0.02,
			Granularity: core.HybridCaching,
			QueryKind:   workload.Associative,
			Heat:        experiment.SkewedHeat,
			UpdateProb:  0.1,
		}).QueriesIssued)
	// Output:
	// queries: 38
	// deterministic: true
}
