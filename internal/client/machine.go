package client

import (
	"math"
	"sort"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/oodb"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is the state-machine face of the client: clientMachine is
// run/processQuery/fetchRemote/fetchRemoteFaulty/receiveBroadcast
// re-expressed as one resumable event callback scheduled directly on the
// kernel's event heap — no goroutine, no channel rendezvous, and no
// allocation on the resume path. Every wait point (arrival, local-access
// hold, uplink, server staging, downlink, retry timeout and backoff,
// broadcast slots) performs the same schedule calls in the same order as
// the Proc path, and every counter, cache, and RNG mutation happens at the
// same point in the event order, so a simulation is byte-identical
// whichever engine runs the client population.

// machineBackend is the backend contract the state-machine engine needs on
// top of Backend: a resumable counterpart of Process. Both *server.Server
// and *federation.ContactServer satisfy it.
type machineBackend interface {
	Backend
	NewCall() server.RequestCall
}

// clientMachine phases. Each wait point records the phase to re-enter; the
// Step loop advances inline through phases that did not actually wait.
const (
	cmArrive       uint8 = iota // draw next arrival; wait for it
	cmQuery                     // generate the query; probe the local caches
	cmLocalDone                 // local holds paid; split air/pull/peer
	cmPeerUp                    // cooperative lookup: probe frame on the uplink
	cmPeerDown                  // cooperative lookup: batched reply downlink
	cmRemote                    // peer stage settled; decide the server trip
	cmUpSend                    // perfect channel: uplink transfer
	cmSrv                       // perfect channel: server staging
	cmDown                      // perfect channel: downlink transfer
	cmFaultAttempt              // reliability layer: arm one attempt
	cmFaultUp                   // reliability layer: uplink transfer
	cmFaultSrv                  // reliability layer: server staging
	cmFaultDown                 // reliability layer: downlink transfer
	cmFaultTimeout              // attempt failed; wait out the timeout
	cmFaultExpired              // timeout fired; give up or back off
	cmAir                       // sort broadcast items by next delivery
	cmAirWait                   // wait for the current item's slot
	cmAirRecv                   // receive and cache the current item
	cmDone                      // finish the query record; loop to cmArrive
)

// clientMachine is one mobile host on the state-machine engine. All state
// that must survive a wait lives here; the struct is allocated once per
// client at StartMachine and never again.
type clientMachine struct {
	c    *Client
	pc   uint8
	call server.RequestCall
	send network.SendState

	// Shed closures are bound once so SendDeferredStep never allocates.
	shedPlainFn  func(float64) int
	shedFaultyFn func(float64) int

	scheduled float64
	connected bool
	existent  int
	remote    bool
	peerRadio bool
	rec       trace.QueryRecord
	need      []workload.ReadOp
	fromAir   []oodb.Item
	airIdx    int

	req        server.Request
	reqBytes   int
	items      []server.ReplyItem
	replyBytes int

	attempt   int
	retries   int
	deadline  float64
	delivered int
}

// StartMachine spawns the client on the state-machine engine. The backend
// must implement NewCall (machineBackend); both the single server and the
// federation contact server do.
func (c *Client) StartMachine() *sim.Machine {
	mb, ok := c.srv.(machineBackend)
	if !ok {
		panic("client: backend does not support the state-machine engine")
	}
	cm := &clientMachine{c: c, call: mb.NewCall()}
	cm.shedPlainFn = cm.shedPlain
	cm.shedFaultyFn = cm.shedFaulty
	return c.kernel.SpawnMachine(c.name(), cm)
}

// shedPlain is fetchRemote's deferred-size hook: shed prefetched items past
// the threshold, account the receive energy, record the reply size.
func (cm *clientMachine) shedPlain(waited float64) int {
	c := cm.c
	if c.shedThreshold > 0 && waited > c.shedThreshold {
		kept := c.scratchKept[:0]
		for _, it := range cm.items {
			if !it.Prefetched {
				kept = append(kept, it)
			}
		}
		c.shedItems += uint64(len(cm.items) - len(kept))
		c.scratchKept = kept
		cm.items = kept
	}
	cm.replyBytes = server.WireSizeItems(cm.items)
	c.energyJoules += network.RxEnergy(cm.replyBytes)
	return cm.replyBytes
}

// shedFaulty is fetchRemoteFaulty's hook: same shedding, but the energy is
// charged by the caller according to the frame's fate.
func (cm *clientMachine) shedFaulty(waited float64) int {
	c := cm.c
	if c.shedThreshold > 0 && waited > c.shedThreshold {
		kept := c.scratchKept[:0]
		for _, it := range cm.items {
			if !it.Prefetched {
				kept = append(kept, it)
			}
		}
		c.shedItems += uint64(len(cm.items) - len(kept))
		c.scratchKept = kept
		cm.items = kept
	}
	cm.delivered = server.WireSizeItems(cm.items)
	return cm.delivered
}

// Step advances the client; see the Proc twins in client.go and retry.go
// for the flow this mirrors statement for statement.
func (cm *clientMachine) Step(m *sim.Machine) {
	c := cm.c
	for {
		switch cm.pc {
		case cmArrive:
			cm.scheduled = c.arrival.Next(c.rnd, cm.scheduled)
			if cm.scheduled >= c.horizon {
				m.Finish()
				return
			}
			cm.pc = cmQuery
			if m.Now() < cm.scheduled && m.HoldUntil(cm.scheduled) {
				return
			}

		case cmQuery:
			c.gen.NextInto(c.rnd, &c.scratchQuery)
			q := &c.scratchQuery
			cm.connected = c.sched.Connected(m.Now())
			need := c.scratchNeed[:0]
			cm.existent = 0
			cm.rec = trace.QueryRecord{
				ClientID:     c.id,
				Index:        q.Index,
				IssuedAt:     cm.scheduled,
				Reads:        len(q.Reads),
				Disconnected: !cm.connected,
			}
			localDelay := 0.0
			for _, rd := range q.Reads {
				item := core.CoverItem(c.granularity, rd.OID, rd.Attr)
				entry, state, delay := c.probeLocal(m.Now(), item)
				localDelay += delay
				now := m.Now()
				switch {
				case state == core.Hit:
					isErr := c.oracle.IsError(item, entry.Version)
					c.m.RecordAccess(now, true)
					c.m.RecordError(now, isErr)
					cm.existent++
					cm.rec.Hits++
					if isErr {
						cm.rec.Errors++
					}
				case state == core.Stale && !cm.connected:
					isErr := c.oracle.IsError(item, entry.Version)
					c.m.RecordAccess(now, false)
					c.m.RecordError(now, isErr)
					cm.rec.Stale++
					if isErr {
						cm.rec.Errors++
					}
				case !cm.connected:
					c.m.RecordAccess(now, false)
					c.m.RecordUnavailable(now)
					cm.rec.Unavailable++
				default:
					need = append(need, rd)
				}
			}
			cm.need = need
			cm.pc = cmLocalDone
			if localDelay > 0 {
				m.Hold(localDelay)
				return
			}

		case cmLocalDone:
			fromAir := c.scratchAir[:0]
			if c.bcast != nil && cm.connected {
				pull := cm.need[:0] // in-place filter: pull lags the read cursor
				for _, rd := range cm.need {
					item := core.CoverItem(c.granularity, rd.OID, rd.Attr)
					if c.bcast.Covers(item) {
						if !containsItem(fromAir, item) {
							fromAir = append(fromAir, item)
						}
						c.bcastReads++
						c.m.RecordAccess(m.Now(), false)
						c.m.RecordError(m.Now(), false)
						continue
					}
					pull = append(pull, rd)
				}
				cm.need = pull
			}
			cm.fromAir = fromAir
			cm.peerRadio = false
			if c.peerScan > 0 && cm.connected && len(cm.need) > 0 {
				if c.planPeerFetch(m.Now(), cm.need) {
					cm.peerRadio = true
					cm.pc = cmPeerUp
					continue
				}
				c.peerMisses += uint64(len(cm.need))
			}
			cm.pc = cmRemote

		case cmPeerUp:
			if !c.up.SendStep(m, &cm.send, c.peerProbeBytes) {
				return
			}
			c.energyJoules += network.TxEnergy(c.peerProbeBytes)
			if transmit(c.upFaults, m.Now()) != network.FrameDelivered {
				c.abortPeerFetch(cm.need)
				cm.pc = cmRemote
				continue
			}
			cm.pc = cmPeerDown

		case cmPeerDown:
			if !c.down.SendStep(m, &cm.send, c.peerReplyBytes) {
				return
			}
			outcome := transmit(c.downFaults, m.Now())
			if outcome != network.FrameLost {
				// The frame was received (and, if corrupted, rejected after
				// the fact): the radio energy is spent either way.
				c.energyJoules += network.RxEnergy(c.peerReplyBytes)
			}
			if outcome != network.FrameDelivered {
				c.abortPeerFetch(cm.need)
			} else {
				cm.need = c.commitPeerFetch(m.Now(), cm.need, &cm.rec)
			}
			cm.pc = cmRemote

		case cmRemote:
			cm.remote = cm.connected && len(cm.need) > 0
			if !cm.remote {
				cm.pc = cmAir
				continue
			}
			cm.req = server.Request{
				ClientID:        c.id,
				Granularity:     c.granularity,
				Accesses:        c.scratchQuery.Reads,
				Need:            cm.need,
				ExistentEntries: cm.existent,
			}
			cm.reqBytes = cm.req.WireSize()
			cm.rec.RequestBytes = cm.reqBytes
			if c.faulted() {
				cm.attempt = 0
				cm.retries = 0
				cm.pc = cmFaultAttempt
				continue
			}
			cm.pc = cmUpSend

		case cmUpSend:
			if !c.up.SendStep(m, &cm.send, cm.reqBytes) {
				return
			}
			c.energyJoules += network.TxEnergy(cm.reqBytes)
			cm.call.Begin(cm.req)
			cm.pc = cmSrv

		case cmSrv:
			rep, done := cm.call.Step(m)
			if !done {
				return
			}
			cm.items = rep.Items
			cm.pc = cmDown

		case cmDown:
			if !c.down.SendDeferredStep(m, &cm.send, cm.shedPlainFn) {
				return
			}
			c.installReply(m.Now(), cm.need, cm.items)
			cm.rec.ReplyBytes = cm.replyBytes
			cm.pc = cmAir

		case cmFaultAttempt:
			cm.deadline = m.Now() + c.requestTimeout(cm.reqBytes)
			cm.pc = cmFaultUp

		case cmFaultUp:
			if !c.up.SendStep(m, &cm.send, cm.reqBytes) {
				return
			}
			c.energyJoules += network.TxEnergy(cm.reqBytes)
			if transmit(c.upFaults, m.Now()) == network.FrameDelivered {
				cm.call.Begin(cm.req)
				cm.pc = cmFaultSrv
				continue
			}
			cm.pc = cmFaultTimeout

		case cmFaultSrv:
			rep, done := cm.call.Step(m)
			if !done {
				return
			}
			cm.items = rep.Items
			cm.delivered = 0
			cm.pc = cmFaultDown

		case cmFaultDown:
			if !c.down.SendDeferredStep(m, &cm.send, cm.shedFaultyFn) {
				return
			}
			switch transmit(c.downFaults, m.Now()) {
			case network.FrameDelivered:
				c.energyJoules += network.RxEnergy(cm.delivered)
				c.replyEstimate = cm.delivered
				c.installReply(m.Now(), cm.need, cm.items)
				cm.rec.ReplyBytes = cm.delivered
				cm.rec.Retries = cm.retries
				cm.pc = cmAir
				continue
			case network.FrameCorrupted:
				// The frame arrived and was received in full before the CRC
				// check rejected it: the radio energy is spent.
				c.energyJoules += network.RxEnergy(cm.delivered)
			}
			// FrameLost: nothing arrived, nothing received.
			cm.pc = cmFaultTimeout

		case cmFaultTimeout:
			cm.pc = cmFaultExpired
			if m.Now() < cm.deadline && m.HoldUntil(cm.deadline) {
				return
			}

		case cmFaultExpired:
			c.timeouts++
			c.m.RecordTimeout(m.Now())
			if cm.attempt >= c.retry.MaxRetries {
				cm.rec.ReplyBytes = 0
				cm.rec.Retries = cm.retries
				cm.rec.TimedOut = true
				c.serveDegraded(m.Now(), cm.need, &cm.rec)
				cm.pc = cmAir
				continue
			}
			cm.retries++
			c.m.RecordRetry(m.Now())
			backoff := c.retry.BackoffBase * math.Pow(2, float64(cm.attempt))
			if backoff > c.retry.BackoffMax {
				backoff = c.retry.BackoffMax
			}
			cm.attempt++
			cm.pc = cmFaultAttempt
			// Jitter in [0.5, 1.5)× the nominal delay decorrelates the
			// retransmissions of clients that lost frames in the same burst.
			m.Hold(backoff * (0.5 + c.retryRnd.Float64()))
			return

		case cmAir:
			if len(cm.fromAir) == 0 {
				cm.pc = cmDone
				continue
			}
			sort.Slice(cm.fromAir, func(i, j int) bool {
				return c.bcast.NextDelivery(cm.fromAir[i], m.Now()) <
					c.bcast.NextDelivery(cm.fromAir[j], m.Now())
			})
			cm.airIdx = 0
			cm.pc = cmAirWait

		case cmAirWait:
			if cm.airIdx >= len(cm.fromAir) {
				cm.pc = cmDone
				continue
			}
			cm.pc = cmAirRecv
			if m.HoldUntil(c.bcast.NextDelivery(cm.fromAir[cm.airIdx], m.Now())) {
				return
			}

		case cmAirRecv:
			item := cm.fromAir[cm.airIdx]
			c.energyJoules += network.RxEnergy(c.bcast.SlotBytes())
			entry := core.Entry{
				Version:   c.oracle.CurrentVersion(item),
				ExpiresAt: m.Now() + c.bcast.Cycle(),
				FetchedAt: m.Now(),
			}
			if reportCoherence(c.coherenceMode) {
				entry.ExpiresAt = coherence.NoExpiry
			}
			if c.store != nil {
				c.store.Insert(item, entry, m.Now())
			}
			c.membuf.Put(item, entry)
			cm.airIdx++
			cm.pc = cmAirWait

		case cmDone:
			// Hand the (possibly grown) scratch backing arrays back for reuse.
			c.scratchNeed = cm.need[:0]
			c.scratchAir = cm.fromAir[:0]
			cm.rec.Remote = cm.remote || len(cm.fromAir) > 0 || cm.peerRadio
			cm.rec.CompletedAt = m.Now()
			c.m.RecordQuery(cm.scheduled, m.Now(), cm.remote, !cm.connected)
			if c.tracer != nil {
				c.tracer.Query(cm.rec)
			}
			cm.pc = cmArrive
		}
	}
}
