package sim

// Machine is the goroutine-free counterpart of Proc: a simulated actor
// expressed as a resumable state machine whose Step callback runs inline
// in kernel context each time its wake event fires. Where resuming a Proc
// costs a channel rendezvous and two goroutine switches, resuming a
// Machine is a method call on the dispatch loop's own stack — no
// goroutine, no channel, no per-resume allocation. That is what makes
// million-client fleets tractable: a suspended Machine is a few dozen
// bytes of state instead of a parked goroutine stack.
//
// The discipline mirrors Proc's exactly:
//
//   - at most one wake is pending per machine (Hold / HoldUntil /
//     Resource grant all go through wake, and a newer wake supersedes any
//     stale one via the generation counter);
//   - Step must return promptly after arranging its next wake (or after
//     Finish); it must never block;
//   - machines share the kernel's spawn-sequence counter with procs, so
//     Drain kills a mixed population in one deterministic spawn order.
//
// Determinism contract: a Machine performing the same schedule calls in
// the same order as an equivalent Proc produces byte-identical
// simulations — both engines push events through the same future event
// list with the same tie-break sequence numbers. DESIGN.md § Execution
// engines spells out the wait-point correspondence.
type Machine struct {
	kernel *Kernel
	name   string
	body   Stepper
	seq    uint64 // spawn order, shared counter with Proc.seq
	// wakeGen invalidates stale wake events: every wake bumps it and
	// stamps the new event, so at most the latest wake fires. CancelWake
	// bumps it without scheduling, revoking a pending timer outright.
	wakeGen uint64
	done    bool
	killed  bool
}

// Stepper is a machine body. Step is invoked in kernel context at every
// wake; it must advance the machine to its next wait point (arranging a
// wake via Hold/HoldUntil/AcquireCall) or call m.Finish, then return.
type Stepper interface {
	Step(m *Machine)
}

// SpawnMachine creates a state machine whose first Step fires at the
// current virtual time.
func (k *Kernel) SpawnMachine(name string, body Stepper) *Machine {
	return k.SpawnMachineAt(k.now, name, body)
}

// SpawnMachineAt creates a state machine whose first Step fires at
// virtual time t (clamped to now). It is the Machine analogue of SpawnAt
// and draws from the same spawn-sequence counter, so procs and machines
// drain in one interleaved deterministic order.
func (k *Kernel) SpawnMachineAt(t float64, name string, body Stepper) *Machine {
	if body == nil {
		panic("sim: SpawnMachineAt with nil body")
	}
	if t < k.now {
		t = k.now
	}
	k.procSeq++
	m := &Machine{kernel: k, name: name, body: body, seq: k.procSeq}
	k.liveM[m] = struct{}{}
	m.wake(t)
	return m
}

// wake schedules (or replaces) the machine's pending Step at time at.
func (m *Machine) wake(at float64) {
	m.wakeGen++
	m.kernel.scheduleMachine(at, m)
}

// Name returns the machine name given at spawn time.
func (m *Machine) Name() string { return m.name }

// Kernel returns the owning kernel.
func (m *Machine) Kernel() *Kernel { return m.kernel }

// Now returns the current virtual time.
func (m *Machine) Now() float64 { return m.kernel.now }

// Hold arranges the next Step at now+d (negative d is treated as zero,
// matching Proc.Hold). The caller must return from Step afterwards.
func (m *Machine) Hold(d float64) {
	if d < 0 {
		d = 0
	}
	m.wake(m.kernel.now + d)
}

// HoldUntil arranges the next Step at absolute time t and reports whether
// a wake was scheduled. A t at or before the current time returns false
// and schedules nothing — the machine continues inline, exactly where
// Proc.HoldUntil returns without yielding.
func (m *Machine) HoldUntil(t float64) bool {
	if t <= m.kernel.now {
		return false
	}
	m.wake(t)
	return true
}

// CancelWake revokes the machine's pending wake, if any: the already-
// scheduled event stays on the future event list but is skipped at
// dispatch. The machine is then woken only by a subsequent Hold/HoldUntil
// or a resource grant — the callback-style timer cancellation primitive.
func (m *Machine) CancelWake() { m.wakeGen++ }

// Finish terminates the machine: no further Steps fire and Drain skips
// it. The Machine analogue of a Proc body returning.
func (m *Machine) Finish() {
	if m.done {
		return
	}
	m.done = true
	delete(m.kernel.liveM, m)
}

// Done reports whether the machine has finished (or been killed).
func (m *Machine) Done() bool { return m.done || m.killed }
