// Command mcsim regenerates the paper's experiments or runs a single
// custom simulation of the mobile caching system.
//
// The command surface is three subcommands:
//
//	mcsim run [flags]        one configuration (single cell or a fleet)
//	mcsim exp <id> [flags]   experiment tables: 1..11, table1, or all
//	mcsim report <dir>       summarize a report directory; -verify replays it
//
// Regenerate a figure (the experiment numbers match §5 of the paper):
//
//	mcsim exp 1           # Figure 2: caching granularity
//	mcsim exp 2           # Figure 3: replacement policies, best case
//	mcsim exp 3           # Figure 4: replacement policies, realistic
//	mcsim exp 4           # Figures 5+6: CSH change rates and cyclic
//	mcsim exp 5           # Figure 7: coherence (beta x U)
//	mcsim exp 6           # Figure 8: disconnection (D x V)
//	mcsim exp 7           # beyond the paper: unreliable channels
//	mcsim exp 8           # beyond the paper: fleet scaling (clients x cells)
//	mcsim exp 9           # beyond the paper: million-client fleets (SM engine)
//	mcsim exp 10          # beyond the paper: IR broadcast vs cooperative caching
//	mcsim exp 11          # beyond the paper: database size x server buffer
//	mcsim exp table1      # Table 1: parameter settings
//	mcsim exp all         # everything
//
// Add -quick for a reduced-scale pass (shorter horizon, sparser grids).
// Sweeps execute on a worker pool, one independent simulation per CPU by
// default; -parallel N overrides the pool size (-parallel 1 forces the old
// serial behaviour — tables are identical either way).
//
// Run one custom configuration, or scale it out to a multi-cell fleet:
//
//	mcsim run -granularity hc -policy ewma-0.5 -kind NQ -heat csh \
//	      -arrival bursty -update 0.3 -beta 1 -days 2
//	mcsim run -clients 1000 -cells 8 -relay 200 -days 0.25
//
// Simulate unreliable channels (deterministic fault injection + client
// retry/backoff; see DESIGN.md §9):
//
//	mcsim run -granularity hc -loss 0.1 -retry 3          # 10% frame loss
//	mcsim run -granularity ac -loss 0.05 -burst 0.2       # plus burst outages
//
// Generate a self-contained run report (docs/OBSERVABILITY.md): manifest,
// Markdown with inline SVG timelines, and a per-query trace. With exp the
// sweep runs first and one representative configuration is re-run
// instrumented; with run the single run itself is instrumented:
//
//	mcsim exp 1 -report out/        # tables + instrumented Exp1 run
//	mcsim run -loss 0.1 -report out/
//
// Any archived report reproduces from its own manifest with one flag, and
// a reproduction can be checked against the recorded table hashes:
//
//	mcsim run -config out/manifest.json
//	mcsim report out/ -verify
//
// The pre-subcommand flag surface (mcsim -run ..., mcsim -exp 1 ...) still
// works so existing scripts keep running; new capabilities land on the
// subcommands only.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			cmdRun(os.Args[2:])
			return
		case "exp":
			cmdExp(os.Args[2:])
			return
		case "report":
			cmdReport(os.Args[2:])
			return
		case "help", "-h", "-help", "--help":
			usage()
			return
		}
	}
	legacyMain()
}

// usage prints the subcommand synopsis (per-subcommand flags: mcsim run -h)
// followed by the experiment catalog, so every help path — usage, exp -h,
// and an unknown id — teaches the same valid set.
func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mcsim run [flags]          run one configuration (mcsim run -h for flags)
  mcsim exp <id> [flags]     regenerate experiments: 1..11, table1, or all
  mcsim report <dir> [-verify]  summarize (and optionally replay) a report
  mcsim -run|-exp ...        legacy flag surface, kept for existing scripts

experiments:
`)
	fmt.Fprint(os.Stderr, expCatalogList())
}

// legacyMain is the pre-subcommand flag surface (-run / -exp as booleans on
// one big flag set). It is kept verbatim so existing scripts and archived
// manifest commands keep working; the subcommands are the documented way in.
func legacyMain() {
	fs := flag.NewFlagSet("mcsim", flag.ExitOnError)
	fs.Usage = func() {
		usage()
		fmt.Fprintln(os.Stderr, "\nlegacy flags:")
		fs.PrintDefaults()
	}
	var o simOpts
	o.register(fs)
	expFlag := fs.String("exp", "", "experiment to regenerate: 1..11, table1, or all")
	quick := fs.Bool("quick", false, "reduced-scale pass (1 simulated day, sparser grids)")
	runOne := fs.Bool("run", false, "run a single custom configuration")
	parallel := fs.Int("parallel", 0, "concurrent simulation runs for sweeps and -replicas (0 = one per CPU)")
	traceFile := fs.String("trace", "", "write a per-query CSV trace to this file (-run only)")
	replicas := fs.Int("replicas", 1, "independent replications with consecutive seeds (-run only)")
	reportDir := fs.String("report", "", "write manifest.json, report.md and trace.csv into this directory")
	cpuProfile, memProfile, pprofAddr := profileFlags(fs)
	fs.Parse(os.Args[1:])
	experiment.SetDefaultWorkers(*parallel)

	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fatal(err)
	}
	// Note: fatal() exits without running deferred calls, so profiles are
	// only written on successful runs.
	defer stopProfiling()

	switch {
	case *runOne:
		cfg, err := o.config()
		if err != nil {
			fatal(err)
		}
		if err := executeRun(cfg, runOpts{
			traceFile: *traceFile,
			replicas:  *replicas,
			reportDir: *reportDir,
		}); err != nil {
			fatal(err)
		}
	case *expFlag != "":
		if err := checkQuickStorage(*quick, o.storage); err != nil {
			fatal(err)
		}
		base, err := o.expBase()
		if err != nil {
			fatal(err)
		}
		if err := runExperiments(*expFlag, base, *quick, *reportDir); err != nil {
			fatal(err)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	os.Exit(1)
}

// applyFaultFlags threads the unreliable-channel flags into a config. For
// exp sweeps they become the base every run inherits (Exp7 overrides the
// loss/burst knobs it sweeps); all-zero flags leave the config untouched,
// preserving the byte-identical perfect-channel tables.
func applyFaultFlags(cfg *experiment.Config, loss, corrupt, burst, burstLen float64,
	retryMax int, backoff float64) {

	cfg.LossRate = loss
	cfg.CorruptRate = corrupt
	cfg.BurstFraction = burst
	cfg.MeanBadSeconds = burstLen
	cfg.RetryMax = retryMax
	cfg.RetryBackoff = backoff
}

func buildConfig(gran, policy, kind, heat, arrival string, changeRate int,
	update, beta float64, disconnect int, hours, days float64,
	seed uint64, clients, objects int) (experiment.Config, error) {

	cfg := experiment.Config{
		Seed:                seed,
		Days:                days,
		NumClients:          clients,
		NumObjects:          objects,
		Policy:              policy,
		CSHChangeEvery:      changeRate,
		UpdateProb:          update,
		Beta:                beta,
		DisconnectedClients: disconnect,
		DisconnectHours:     hours,
	}
	g, err := core.ParseGranularity(gran)
	if err != nil {
		return cfg, err
	}
	cfg.Granularity = g

	switch strings.ToUpper(kind) {
	case "AQ":
		cfg.QueryKind = workload.Associative
	case "NQ":
		cfg.QueryKind = workload.Navigational
	default:
		return cfg, fmt.Errorf("unknown query kind %q (want AQ|NQ)", kind)
	}
	switch heat {
	case "sh":
		cfg.Heat = experiment.SkewedHeat
	case "csh":
		cfg.Heat = experiment.ChangingSkewedHeat
	case "cyclic":
		cfg.Heat = experiment.CyclicHeat
	default:
		return cfg, fmt.Errorf("unknown heat %q (want sh|csh|cyclic)", heat)
	}
	switch arrival {
	case "poisson":
		cfg.Arrival = experiment.PoissonArrival
	case "bursty":
		cfg.Arrival = experiment.BurstyArrival
	default:
		return cfg, fmt.Errorf("unknown arrival %q (want poisson|bursty)", arrival)
	}
	return cfg, nil
}

func printResult(res experiment.Result) {
	fmt.Printf("config: %s  heat=%s arrivals=%s beta=%g U=%g V=%d D=%gh\n",
		res.Config, res.Config.HeatName(), res.Config.ArrivalName(),
		res.Config.Beta, res.Config.UpdateProb,
		res.Config.DisconnectedClients, res.Config.DisconnectHours)
	fmt.Printf("hit ratio      %6.2f%%\n", 100*res.HitRatio)
	fmt.Printf("response time  %6.3fs\n", res.MeanResponse)
	fmt.Printf("error rate     %6.2f%%\n", 100*res.ErrorRate)
	fmt.Printf("queries        %d (local %d, remote %d)\n",
		res.QueriesIssued, res.QueriesLocal, res.QueriesRemote)
	fmt.Printf("unavailable    %d reads\n", res.Unavailable)
	fmt.Printf("channels       up %.1f%%, down %.1f%% utilized; down wait %.3fs\n",
		100*res.UplinkUtilization, 100*res.DownlinkUtilization, res.DownlinkMeanWait)
	fmt.Printf("server         %d queries, %d disk reads, buffer hit %.1f%%, %d updates\n",
		res.Server.QueriesServed, res.Server.DiskReads,
		100*res.Server.BufferHitRatio, res.Server.UpdatesApplied)
	if t := res.StorageTier; t.DSN != "" {
		fmt.Printf("storage tier   %s: %d gets, %d puts, %d errors; %d keys, %d bytes on disk\n",
			t.DSN, t.Gets, t.Puts, t.Errors, t.Keys, t.DiskBytes)
		fmt.Printf("tier latency   get p50/p99 %.3g/%.3g ms, put p50/p99 %.3g/%.3g ms (measured)\n",
			t.GetP50ms, t.GetP99ms, t.PutP50ms, t.PutP99ms)
	}
	if res.Config.Cells > 1 {
		fmt.Printf("fleet          %d cells; backbone %.2f MB in %d messages\n",
			res.Config.Cells, float64(res.BackboneBytes)/1e6, res.BackboneMessages)
		if probes := res.RelayHits + res.RelayMisses; probes > 0 {
			fmt.Printf("relay cache    %d hits, %d misses (%d relayed reads)\n",
				res.RelayHits, res.RelayMisses, res.RelayedReads)
		}
	}
	fmt.Printf("radio energy   %.3f J/query\n", res.RadioEnergyPerQuery)
	if res.BroadcastReads > 0 {
		fmt.Printf("air reads      %d (broadcast channel)\n", res.BroadcastReads)
	}
	if res.ItemsShed > 0 {
		fmt.Printf("shed items     %d (timeout heuristic)\n", res.ItemsShed)
	}
	if res.CacheDrops > 0 {
		fmt.Printf("cache drops    %d (missed invalidation reports)\n", res.CacheDrops)
	}
	if res.IRReports > 0 {
		fmt.Printf("IR broadcast   %d reports (%.2f MB on air), %d missed, %d forced revalidations\n",
			res.IRReports, float64(res.IRReportBytes)/1e6, res.IRMissed, res.ForcedRevals)
	}
	if res.PeerHits+res.PeerMisses > 0 {
		fmt.Printf("cooperation    %d peer-served reads, %d fell through to the server\n",
			res.PeerHits, res.PeerMisses)
	}
	if res.FramesLost > 0 || res.FramesCorrupted > 0 || res.Retries > 0 {
		fmt.Printf("channel faults %d frames lost, %d corrupted\n",
			res.FramesLost, res.FramesCorrupted)
		fmt.Printf("reliability    %d retries, %d timeouts, %d degraded reads; access errors %.2f%%\n",
			res.Retries, res.Timeouts, res.DegradedReads, 100*res.AccessErrorRate)
	}
}

// printThroughput reports wall-clock event throughput. It prints after the
// deterministic result block: Result.Events is reproducible, the wall time
// is environment fact, and only their ratio mixes the two.
func printThroughput(events uint64, wall time.Duration) {
	s := wall.Seconds()
	if events == 0 || s <= 0 {
		return
	}
	fmt.Printf("throughput     %d events in %.1fs wall (%.3g events/s)\n",
		events, s, float64(events)/s)
}

// expCatalog summarizes every experiment key in selection order; the
// unknown-experiment error prints it so a typo teaches the valid range.
var expCatalog = []struct{ key, summary string }{
	{"1", "Figure 2: caching granularity (NC/AC/OC/HC)"},
	{"2", "Figure 3: replacement policies, best case"},
	{"3", "Figure 4: replacement policies, realistic workloads"},
	{"4", "Figures 5+6: CSH change rates and cyclic access"},
	{"5", "Figure 7: coherence (beta x U)"},
	{"6", "Figure 8: disconnected operation (D x V)"},
	{"7", "beyond the paper: unreliable channels (loss x burst x coherence)"},
	{"8", "beyond the paper: fleet scaling (clients x cells x relay cache)"},
	{"9", "beyond the paper: million-client fleets on the state-machine engine"},
	{"10", "beyond the paper: IR broadcast vs cooperative caching (loss x fleet)"},
	{"11", "beyond the paper: database size x server buffer (persistent tier)"},
	{"table1", "Table 1: parameter settings"},
	{"all", "every experiment above"},
}

// expCatalogList renders the catalog one experiment per line, the shared
// body of usage(), exp -h, and the unknown-experiment error.
func expCatalogList() string {
	var b strings.Builder
	for _, e := range expCatalog {
		fmt.Fprintf(&b, "  %-6s  %s\n", e.key, e.summary)
	}
	return b.String()
}

// unknownExperiment builds the error for an unrecognized experiment id: the
// valid range plus one line per experiment.
func unknownExperiment(which string) error {
	return fmt.Errorf("unknown experiment %q (want 1..11, table1, all); valid experiments:\n%s",
		which, strings.TrimRight(expCatalogList(), "\n"))
}

// expJob is one named table-producing sweep inside an exp invocation.
type expJob struct {
	name string
	run  func() fmt.Stringer
}

// expJobs selects the jobs an experiment id expands to, in print order.
func expJobs(which string, base experiment.Config, quick bool) ([]expJob, error) {
	var jobs []expJob
	add := func(name string, run func() fmt.Stringer) {
		jobs = append(jobs, expJob{name, run})
	}
	wantAll := which == "all"
	want := func(n string) bool { return wantAll || which == n }

	if want("table1") {
		add("Table 1", func() fmt.Stringer { return experiment.Table1() })
	}
	if want("1") {
		add("Experiment #1 (Figure 2)", func() fmt.Stringer { return experiment.Exp1(base) })
	}
	if want("2") {
		add("Experiment #2 (Figure 3)", func() fmt.Stringer { return experiment.Exp2(base) })
	}
	if want("3") {
		add("Experiment #3 (Figure 4)", func() fmt.Stringer { return experiment.Exp3(base) })
	}
	if want("4") {
		add("Experiment #4 (Figure 5)", func() fmt.Stringer { return experiment.Exp4(base) })
		add("Experiment #4 (Figure 6)", func() fmt.Stringer { return experiment.Exp4Cyclic(base) })
	}
	if want("5") {
		add("Experiment #5 (Figure 7)", func() fmt.Stringer { return experiment.Exp5(base) })
	}
	if want("6") {
		if quick {
			add("Experiment #6 (Figure 8, quick grid)", func() fmt.Stringer { return experiment.Exp6Quick(base) })
		} else {
			add("Experiment #6 (Figure 8)", func() fmt.Stringer { return experiment.Exp6(base) })
		}
	}
	if want("7") {
		if quick {
			add("Experiment #7 (unreliable channels, quick grid)", func() fmt.Stringer { return experiment.Exp7Quick(base) })
		} else {
			add("Experiment #7 (unreliable channels)", func() fmt.Stringer { return experiment.Exp7(base) })
		}
	}
	if want("8") {
		if quick {
			add("Experiment #8 (fleet scaling, quick grid)", func() fmt.Stringer { return experiment.Exp8Quick(base) })
		} else {
			add("Experiment #8 (fleet scaling)", func() fmt.Stringer { return experiment.Exp8(base) })
		}
	}
	if want("9") {
		if quick {
			add("Experiment #9 (million-client fleets, quick grid)", func() fmt.Stringer { return experiment.Exp9Quick(base) })
		} else {
			add("Experiment #9 (million-client fleets)", func() fmt.Stringer { return experiment.Exp9(base) })
		}
	}
	if want("10") {
		if quick {
			add("Experiment #10 (coherence schemes, quick grid)", func() fmt.Stringer { return experiment.Exp10Quick(base) })
		} else {
			add("Experiment #10 (coherence schemes head-to-head)", func() fmt.Stringer { return experiment.Exp10(base) })
		}
	}
	if want("11") {
		if quick {
			add("Experiment #11 (size x buffer, quick grid)", func() fmt.Stringer { return experiment.Exp11Quick(base) })
		} else {
			add("Experiment #11 (size x buffer, persistent tier)", func() fmt.Stringer { return experiment.Exp11(base) })
		}
	}
	if len(jobs) == 0 {
		return nil, unknownExperiment(which)
	}
	return jobs, nil
}

// runJobs prints every job's tables with wall time and event throughput,
// returning the first report that ran simulations (the one a -report
// instruments and a manifest hashes).
func runJobs(jobs []expJob) *experiment.Report {
	var firstRep *experiment.Report
	for _, j := range jobs {
		start := time.Now()
		fmt.Printf("=== %s ===\n", j.name)
		out := j.run()
		fmt.Println(out.String())
		wall := time.Since(start).Seconds()
		rep, ok := out.(*experiment.Report)
		var events uint64
		if ok {
			for _, res := range rep.Results {
				events += res.Events
			}
		}
		if events > 0 && wall > 0 {
			fmt.Printf("(%s in %.1fs, %.3g events/s)\n\n", j.name, wall, float64(events)/wall)
		} else {
			fmt.Printf("(%s in %.1fs)\n\n", j.name, wall)
		}
		if ok && firstRep == nil && len(rep.Results) > 0 {
			firstRep = rep
		}
	}
	return firstRep
}

// runExperiments regenerates the requested experiment(s). With a non-empty
// reportDir, the first experiment's first configuration is re-run
// instrumented after the sweep and the report artifacts are written there.
func runExperiments(which string, base experiment.Config, quick bool, reportDir string) error {
	_, err := runExperimentsRep(which, base, quick, reportDir)
	return err
}

// runExperimentsRep is runExperiments returning the first table-producing
// report, which manifest replays hash-check against the archived digests.
// Quick mode shortens an unset horizon to one day — except for Experiments
// #8 through #11, whose grids carry their own shorter defaults.
func runExperimentsRep(which string, base experiment.Config, quick bool,
	reportDir string) (*experiment.Report, error) {

	if quick && base.Days == 0 && which != "8" && which != "9" && which != "10" && which != "11" {
		base.Days = 1
	}
	jobs, err := expJobs(which, base, quick)
	if err != nil {
		return nil, err
	}
	firstRep := runJobs(jobs)
	if reportDir != "" {
		if firstRep == nil {
			return nil, fmt.Errorf("-report needs a simulation to instrument (table1 runs none)")
		}
		cfg := firstRep.Results[0].Config
		// The literal "<dir>" keeps report bytes independent of where the
		// artifacts landed: same seed, same bytes, any output directory.
		command := fmt.Sprintf("mcsim exp %s -seed %d", which, base.Seed)
		if quick {
			command += " -quick"
		}
		command += " -report <dir>"
		if _, err := instrumentedReport(reportDir, "exp"+which, command, firstRep, cfg, quick); err != nil {
			return firstRep, err
		}
		fmt.Printf("report: instrumented %s re-run written to %s\n", cfg, reportDir)
	}
	return firstRep, nil
}

// runCommand renders the reproduce command for a run report. The manifest
// config is the authoritative parameter record; the command names the
// flags a rerun usually needs. "<dir>" stands in for the output directory
// so report bytes never depend on where the artifacts landed.
func runCommand(cfg experiment.Config) string {
	return fmt.Sprintf("mcsim run -granularity %s -policy %s -seed %d -report <dir> (full parameters: manifest config)",
		cfg.Granularity, cfg.Policy, cfg.Seed)
}

// instrumentedReport runs cfg with an obs registry and a trace collector
// attached and writes manifest.json, report.md and trace.csv into dir.
// rep (optional) supplies the sweep tables the report embeds and hashes;
// quick is recorded in the manifest so replays regenerate the same grids.
func instrumentedReport(dir, expName, command string, rep *experiment.Report,
	cfg experiment.Config, quick bool) (experiment.Result, error) {

	col := &trace.Collector{}
	cfg.Tracer = col
	cfg.Obs = obs.New(0)
	start := time.Now()
	res := experiment.RunFleet(cfg)
	man := report.NewManifest(expName, command, res.Config, rep, cfg.Obs)
	man.Quick = quick
	man.WallSeconds = time.Since(start).Seconds()
	err := report.Write(dir, report.Input{
		Manifest: man,
		Rep:      rep,
		Result:   res,
		Reg:      cfg.Obs,
		Trace:    col,
	})
	return res, err
}
