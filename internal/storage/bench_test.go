package storage

import (
	"fmt"
	"path/filepath"
	"testing"
)

// benchStore opens a store preloaded with n sequential keys.
func benchStore(b *testing.B, n int, sync SyncMode) *Store {
	b.Helper()
	s, err := Open(Options{
		Path: filepath.Join(b.TempDir(), "db"),
		Sync: sync,
	})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	b.Cleanup(func() { s.Close() })
	val := make([]byte, 1024)
	for i := 0; i < n; i++ {
		if err := s.Put(benchKey(i), val); err != nil {
			b.Fatalf("preload: %v", err)
		}
	}
	return s
}

func benchKey(i int) string { return fmt.Sprintf("obj-%08d", i) }

// BenchmarkStorageGet measures point reads against a 100K-record store —
// the ROADMAP's file-backed benchmark regime (get < 4ms).
func BenchmarkStorageGet(b *testing.B) {
	const n = 100_000
	s := benchStore(b, n, SyncNone)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(benchKey(i % n)); err != nil || !ok {
			b.Fatalf("Get: %v %v", ok, err)
		}
	}
}

// BenchmarkStorageInsert measures group-committed durable writes (insert
// < 20ms in the ROADMAP regime): every Put returns only after its epoch
// has fsynced.
func BenchmarkStorageInsert(b *testing.B) {
	s := benchStore(b, 0, SyncGroup)
	val := make([]byte, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(benchKey(i), val); err != nil {
			b.Fatalf("Put: %v", err)
		}
	}
}

// BenchmarkStorageRecover measures cold-start log replay of a 100K-record
// store; one iteration is one full Open.
func BenchmarkStorageRecover(b *testing.B) {
	const n = 100_000
	s := benchStore(b, n, SyncNone)
	path := s.opts.Path
	if err := s.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := Open(Options{Path: path})
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		if s.Len() != n {
			b.Fatalf("recovered %d keys, want %d", s.Len(), n)
		}
		s.Close()
	}
}
