package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, 0)
	b := Derive(7, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived substreams 0 and 1 coincide on first draw")
	}
	c := Derive(7, 0)
	c2 := Derive(7, 0)
	for i := 0; i < 100; i++ {
		if c.Uint64() != c2.Uint64() {
			t.Fatal("Derive is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) value %d count %d, want ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const rate = 0.01
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Exp mean %v, want ~%v", mean, want)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make(map[int]bool)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(19)
	s := r.Sample(100, 20)
	if len(s) != 20 {
		t.Fatalf("Sample length %d", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Sample invalid element %d", v)
		}
		seen[v] = true
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSampleFull(t *testing.T) {
	r := New(23)
	s := r.Sample(10, 10)
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Sample(10,10) is not a permutation: %v", s)
	}
}

func TestDiscreteDraw(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 1})
	r := New(29)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Draw(r)]++
	}
	for i, want := range []float64{0.25, 0.5, 0.25} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Discrete index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestDiscreteZeroWeight(t *testing.T) {
	d := NewDiscrete([]float64{0, 1, 0})
	r := New(31)
	for i := 0; i < 1000; i++ {
		if v := d.Draw(r); v != 1 {
			t.Fatalf("Discrete drew zero-weight index %d", v)
		}
	}
}

func TestDiscretePanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDiscrete(%v) did not panic", w)
				}
			}()
			NewDiscrete(w)
		}()
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(9, 1)
	if len(w) != 9 {
		t.Fatalf("len %d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("ZipfWeights not decreasing at %d: %v >= %v", i, w[i], w[i-1])
		}
		if w[i] <= 0 {
			t.Fatalf("ZipfWeights non-positive at %d", i)
		}
	}
	if w[0] != 1 {
		t.Fatalf("first weight %v, want 1", w[0])
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	w := ZipfWeights(5, 0)
	for _, v := range w {
		if v != 1 {
			t.Fatalf("theta=0 weight %v, want 1", v)
		}
	}
}

// Property: Intn is always within range for any positive n and seed.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(nn)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sample always returns k distinct in-range values.
func TestQuickSampleDistinct(t *testing.T) {
	f := func(seed uint64, n, k uint8) bool {
		nn := int(n)%200 + 1
		kk := int(k) % (nn + 1)
		s := New(seed).Sample(nn, kk)
		if len(s) != kk {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: derived streams are reproducible.
func TestQuickDeriveDeterministic(t *testing.T) {
	f := func(seed, id uint64) bool {
		a := Derive(seed, id)
		b := Derive(seed, id)
		for i := 0; i < 5; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
