// Package coherence implements the paper's lazy pull-based cache coherence
// strategy (§3.2) and the perfect-knowledge error accounting used by its
// evaluation (§3.2, §5).
//
// The scheme derives from the Leases file-caching mechanism: every item
// shipped from the server carries a refresh time
//
//	RT = d̄ + β·s
//
// where d̄ and s are the mean and standard deviation of the inter-arrival
// durations of write operations on the item, and β expresses how much
// staleness the client tolerates (larger β → longer leases → higher hit
// ratio, more errors). The client treats a cached copy as valid until
// fetchTime + RT; expired copies are refreshed on demand at the next access
// — no server callbacks, no invalidation broadcasts, so the scheme works
// across disconnections.
//
// An access to a cached copy counts as an *error* when the server has
// applied a write to the base item after the copy was fetched — evaluated
// with perfect knowledge via the version counters in internal/oodb.
package coherence

import (
	"math"

	"repro/internal/oodb"
	"repro/internal/stats"
)

// NoExpiry is a sentinel "never expires" timestamp used by tests and
// read-only workloads.
const NoExpiry = math.MaxFloat64

// Strategy selects the coherence scheme a client runs.
type Strategy int

const (
	// LeaseStrategy is the paper's lazy pull-based scheme: items carry
	// adaptive refresh times and are re-validated on demand.
	LeaseStrategy Strategy = iota
	// InvalidationReportStrategy is the broadcast baseline of [2]
	// (Barbará & Imieliński) the paper argues against: the server
	// periodically broadcasts which items changed; connected clients
	// invalidate, and a client that misses a report can no longer trust
	// any cached item and must drop its cache. Implemented as a
	// comparison point for the disconnection experiments.
	InvalidationReportStrategy
	// FixedLeaseStrategy is the original Leases scheme [7] with a single
	// pre-specified refresh duration for every item — the baseline whose
	// weakness ("it is difficult to determine an appropriate refresh
	// duration", §2) motivates the paper's adaptive per-item estimate.
	FixedLeaseStrategy
	// IRBroadcastStrategy is the windowed invalidation-report scheme of
	// Barbará & Imieliński's broadcasting-timestamps variant: every report
	// period the server pushes, over a dedicated downlink broadcast
	// channel, the set of items written during the trailing report window.
	// A client whose silence gap fits inside the window reconciles
	// incrementally; a client that slept through more than one window (or
	// lost the report frame to channel faults) can no longer bound its
	// staleness and must force-revalidate every cached item on next use.
	// Unlike InvalidationReportStrategy it works across fleet cells (one
	// broadcaster per cell) and degrades gracefully: forced revalidation
	// keeps the cache contents, only their leases are voided.
	IRBroadcastStrategy
)

// String renders the strategy name.
func (s Strategy) String() string {
	switch s {
	case LeaseStrategy:
		return "lease"
	case InvalidationReportStrategy:
		return "invalidation-report"
	case FixedLeaseStrategy:
		return "fixed-lease"
	case IRBroadcastStrategy:
		return "ir-broadcast"
	default:
		return "strategy(?)"
	}
}

// Parse maps a CLI/option spelling to a Strategy. Accepted names are the
// String() forms plus the short CLI aliases: "lease", "fixed"/"fixed-lease",
// "ir"/"invalidation-report", and "irb"/"ir-broadcast". The boolean reports
// whether the name was recognized.
func Parse(name string) (Strategy, bool) {
	switch name {
	case "lease":
		return LeaseStrategy, true
	case "ir", "invalidation-report":
		return InvalidationReportStrategy, true
	case "fixed", "fixed-lease":
		return FixedLeaseStrategy, true
	case "irb", "ir-broadcast":
		return IRBroadcastStrategy, true
	}
	return 0, false
}

// DefaultReportInterval is the invalidation-report broadcast period in
// simulated seconds.
const DefaultReportInterval = 60.0

// DefaultFixedLease is the refresh duration used by FixedLeaseStrategy
// when none is configured.
const DefaultFixedLease = 600.0

// DefaultIRWindow is the trailing update window, in simulated seconds,
// covered by each IRBroadcastStrategy report when none is configured.
// Five report periods of slack lets a client ride out transient frame
// loss without forced revalidation.
const DefaultIRWindow = 5 * DefaultReportInterval

// RefreshEstimator tracks the write streams of database items at the
// server and estimates per-item refresh times. One estimator instance
// lives at the server; the granularity of its keys matches the caching
// granularity (whole objects under OC, attributes under AC/HC).
type RefreshEstimator struct {
	beta float64
	// Streams live contiguously in an arena indexed through the map: one
	// allocation per arena growth instead of one per tracked item, and the
	// hot ObserveWrite/RefreshTime lookups touch a flat slice.
	index   map[oodb.Item]int32
	streams []stats.InterArrival
}

// NewRefreshEstimator returns an estimator with the given β.
func NewRefreshEstimator(beta float64) *RefreshEstimator {
	return &RefreshEstimator{
		beta:  beta,
		index: make(map[oodb.Item]int32),
	}
}

// Beta returns the staleness-tolerance parameter.
func (e *RefreshEstimator) Beta() float64 { return e.beta }

// ObserveWrite records a write on item at virtual time now.
func (e *RefreshEstimator) ObserveWrite(it oodb.Item, now float64) {
	i, ok := e.index[it]
	if !ok {
		i = int32(len(e.streams))
		e.streams = append(e.streams, stats.InterArrival{})
		e.index[it] = i
	}
	e.streams[i].Observe(now)
}

// RefreshTime returns the lease duration for item at time now.
//
// With at least two observed writes this is the paper's formula
// RT = d̄ + β·s over the write inter-arrival durations, clamped at zero
// (a strongly negative β makes copies immediately stale).
//
// Thin histories need a provisional estimate — an infinite lease here
// would freeze an early-fetched copy forever and silently accrue errors
// once writes begin (the paper's on-demand refresh can only re-learn a
// lease when a lease actually expires). We use the maximum-likelihood
// style fallbacks: an item never written in `now` seconds is leased for
// another `now` seconds; an item written exactly once is leased for the
// time elapsed since that write. Both converge to the formula as history
// accumulates.
func (e *RefreshEstimator) RefreshTime(it oodb.Item, now float64) float64 {
	i, ok := e.index[it]
	if !ok {
		return now
	}
	s := &e.streams[i]
	if s.Count() == 0 {
		last, _ := s.Last()
		if rt := now - last; rt > 0 {
			return rt
		}
		return 0
	}
	rt := s.Mean() + e.beta*s.Std()
	if rt < 0 {
		return 0
	}
	return rt
}

// ExpiresAt returns the absolute expiry timestamp for an item fetched at
// time now: now + RefreshTime.
func (e *RefreshEstimator) ExpiresAt(it oodb.Item, now float64) float64 {
	return now + e.RefreshTime(it, now)
}

// WriteCount returns the number of writes observed on item.
func (e *RefreshEstimator) WriteCount(it oodb.Item) uint64 {
	i, ok := e.index[it]
	if !ok {
		return 0
	}
	c := e.streams[i].Count()
	return c + 1 // durations = events − 1; first event was also a write
}

// TrackedItems returns the number of items with observed writes.
func (e *RefreshEstimator) TrackedItems() int { return len(e.streams) }

// StreamState snapshots item's write-stream estimator state for
// persistence. The boolean reports whether the item has any history.
func (e *RefreshEstimator) StreamState(it oodb.Item) (stats.InterArrivalState, bool) {
	i, ok := e.index[it]
	if !ok {
		return stats.InterArrivalState{}, false
	}
	return e.streams[i].State(), true
}

// RestoreStream installs a previously snapshotted write stream for item,
// replacing any history the estimator already holds for it. A persistent
// tier replays these at recovery so refresh-time estimates survive
// restarts.
func (e *RefreshEstimator) RestoreStream(it oodb.Item, st stats.InterArrivalState) {
	i, ok := e.index[it]
	if !ok {
		i = int32(len(e.streams))
		e.streams = append(e.streams, stats.InterArrival{})
		e.index[it] = i
	}
	e.streams[i].Restore(st)
}

// Oracle evaluates read errors with perfect knowledge of server state. It
// compares the version a client fetched against the server's current
// version at read time: any interleaved write makes the read an error
// (§3.2's definition: a write precedes the read within the two refreshes).
type Oracle struct {
	db *oodb.Database
}

// NewOracle returns an oracle over the server database.
func NewOracle(db *oodb.Database) *Oracle {
	if db == nil {
		panic("coherence: NewOracle requires a database")
	}
	return &Oracle{db: db}
}

// CurrentVersion returns the server-side version of the item: the object
// version for whole-object items, the attribute version otherwise. Clients
// stamp cache entries with this value at fetch time.
func (o *Oracle) CurrentVersion(it oodb.Item) uint64 {
	if it.IsObject() {
		return o.db.ObjectVersion(it.OID)
	}
	return o.db.AttrVersion(it.OID, it.Attr)
}

// IsError reports whether reading a copy of item fetched at version
// cachedVersion is an error now, i.e. whether the base item has been
// written since the fetch.
//
// The granularity of `it` is load-bearing and reproduces the paper's
// Experiment #5 observation: under OC the cached unit is the whole object,
// so a write to *any* attribute invalidates reads of *every* attribute
// (higher error rates), while under AC/HC only writes to the same
// attribute count.
func (o *Oracle) IsError(it oodb.Item, cachedVersion uint64) bool {
	return o.CurrentVersion(it) > cachedVersion
}
