package storage

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestParseDSN(t *testing.T) {
	cases := []struct {
		dsn  string
		path string
		sync SyncMode
	}{
		{"file:/var/lib/mc", "/var/lib/mc", SyncGroup},
		{"file:rel/dir", "rel/dir", SyncGroup},
		{"file:/d?sync=group", "/d", SyncGroup},
		{"file:/d?sync=always", "/d", SyncAlways},
		{"file:/d?sync=none", "/d", SyncNone},
	}
	for _, c := range cases {
		opts, err := ParseDSN(c.dsn)
		if err != nil {
			t.Fatalf("ParseDSN(%q): %v", c.dsn, err)
		}
		if opts.Path != c.path || opts.Sync != c.sync {
			t.Fatalf("ParseDSN(%q) = {Path:%q Sync:%v}, want {%q %v}",
				c.dsn, opts.Path, opts.Sync, c.path, c.sync)
		}
	}
}

func TestParseDSNErrors(t *testing.T) {
	for _, dsn := range []string{
		"",                  // no scheme
		"file",              // no separator
		"redis:/d",          // unknown scheme
		"file:",             // empty path
		"file:/d?sync=slow", // unknown sync mode
		"file:/d?nope=1",    // unknown parameter
		"file:/d?sync=%zz",  // unparseable query
	} {
		if _, err := ParseDSN(dsn); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("ParseDSN(%q) = %v, want ErrBadOptions", dsn, err)
		}
	}
}

func TestOpenDSN(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	st, err := OpenDSN("file:" + dir + "?sync=none")
	if err != nil {
		t.Fatalf("OpenDSN: %v", err)
	}
	defer st.Close()
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := st.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if st.Stats().Sync != "none" {
		t.Fatalf("Sync mode = %q, want none", st.Stats().Sync)
	}
	if _, err := OpenDSN("bogus"); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("OpenDSN(bogus) = %v, want ErrBadOptions", err)
	}
}
