// Package server implements the OODB database server of §4: query
// evaluation against the object store through an LRU memory buffer and a
// fast-SCSI disk, application of update operations (probability U per
// accessed object), maintenance of per-item write histories for the
// refresh-time estimator, attribute-heat tracking for hybrid caching's
// prefetch decision, and reply assembly per caching granularity.
package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"repro/internal/buffer"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Defaults from §4 / Table 1.
const (
	// DefaultBufferObjects is the server memory buffer: 25% of the
	// database, i.e. 500 objects.
	DefaultBufferObjects = 500
	// DefaultPrefetchKappa places the HC prefetch threshold at
	// c = μ + κ·σ over per-attribute access rates. The paper states
	// κ = −2; for any realistically skewed rate distribution that cutoff
	// is non-positive, which would degrade HC into OC, so the default here
	// is κ = 0 ("prefetch attributes at least as popular as the average")
	// — see DESIGN.md. κ is configurable, and the ablation benchmark
	// sweeps it (including the paper's −2).
	DefaultPrefetchKappa = 0.0
	// prefetchMinSamples is how many attribute accesses the server wants
	// from a client before trusting its heat profile for prefetching.
	prefetchMinSamples = 100
)

// StorageTier is the persistent disk tier behind the memory buffer — the
// log-structured engine of internal/storage (or a test double). On every
// buffer miss the server reads the object's record from the tier, lazily
// materializing objects on first touch, so a database far larger than RAM
// exercises a real on-disk working set. The tier is a measured side
// effect: simulated timing still charges the modeled disk constants, so
// results remain byte-deterministic across machines and sync modes while
// the tier's wall-clock latencies land in its own histograms.
type StorageTier interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, value []byte) error
}

// Config parameterizes the server.
type Config struct {
	Kernel *sim.Kernel
	DB     *oodb.Database
	// BufferObjects is the LRU memory buffer capacity in objects
	// (DefaultBufferObjects if zero).
	BufferObjects int
	// Beta is the coherence staleness-tolerance knob for refresh times.
	Beta float64
	// UpdateProb is U: the probability that an object accessed by a query
	// is updated at the server during that query's processing.
	UpdateProb float64
	// PrefetchKappa positions the HC prefetch threshold at μ + κ·σ.
	// NaN selects DefaultPrefetchKappa; -inf prefetches everything.
	PrefetchKappa float64
	// Seed drives the update coin flips.
	Seed uint64
	// DiskBandwidthBps / MemoryBandwidthBps override the paper's 40 Mbps
	// and 100 Mbps when non-zero.
	DiskBandwidthBps   float64
	MemoryBandwidthBps float64
	// Storage, when non-nil, is the persistent tier behind the buffer pool
	// (see StorageTier).
	Storage StorageTier
}

// Request is a client query as seen by the server. Wire size is computed
// from ExistentEntries (the existent list, §3.1.2); the remaining fields
// are simulation-level knowledge the real server would derive by
// evaluating the query itself.
type Request struct {
	ClientID    int
	Granularity core.Granularity
	// Accesses is the query's full read set (for the update model: every
	// accessed object is updated with probability U).
	Accesses []workload.ReadOp
	// Need is the subset of reads the client could not satisfy locally.
	Need []workload.ReadOp
	// ExistentEntries counts the (oid, attr) pairs the client reported as
	// locally satisfied.
	ExistentEntries int
}

// WireSize returns the upstream message size in bytes.
func (r Request) WireSize() int { return network.RequestSize(r.ExistentEntries) }

// ReplyItem is one item shipped back to the client.
type ReplyItem struct {
	Item oodb.Item
	// Version is the server-side version at send time (error oracle).
	Version uint64
	// Refresh is the refresh-time estimate shipped with the item (§3.2);
	// the client starts the lease when it caches the copy.
	Refresh float64
	// Prefetched marks items the client did not ask for (HC and OC extra
	// attributes beyond the request).
	Prefetched bool
}

// Reply is the downstream result message.
type Reply struct {
	Items []ReplyItem
}

// WireSize returns the downstream message size in bytes.
func (r Reply) WireSize() int { return WireSizeItems(r.Items) }

// WireSizeItems returns the downstream wire size of a reply carrying the
// given items (used by the timeout heuristic after shedding).
func WireSizeItems(items []ReplyItem) int {
	size := network.HeaderSize
	for _, it := range items {
		size += network.ReplyEntrySize(it.Item)
	}
	return size
}

// Server is the database server simulation entity.
type Server struct {
	kernel *sim.Kernel
	db     *oodb.Database
	buf    *buffer.LRU[oodb.OID, struct{}]
	disk   *sim.Resource

	diskSecPerObject float64
	memSecPerObject  float64

	refreshObj  *coherence.RefreshEstimator // whole-object write streams
	refreshAttr *coherence.RefreshEstimator // per-attribute write streams
	oracle      *coherence.Oracle

	updateProb    float64
	updateRnd     *rng.Stream
	prefetchKappa float64

	heat map[int]*clientHeat // per-client attribute access profile

	// scratch holds per-client request buffers. Each client has at most one
	// outstanding request, but Process yields at disk/memory Holds, so
	// buffers that live across a yield (the staging order, the reply items)
	// must not be shared between clients.
	scratch map[int]*reqScratch
	// oidStamp/oidGen implement an O(1)-reset "seen" set for distinct-OID
	// collection; oidIdx records each OID's position in the latest
	// collected order (valid only while oidStamp[oid] == oidGen). The maps
	// are only touched between yields, so sharing them across clients is
	// safe.
	oidStamp map[oodb.OID]uint64
	oidIdx   map[oodb.OID]int32
	oidGen   uint64
	// attrBits holds per-distinct-OID shipped/updated attribute bitmaps,
	// indexed in step with the current distinct-OID order (used only
	// between yields).
	attrBits []uint16
	// prefetchBuf backs prefetchSet's result; consumed before the next call.
	prefetchBuf []oodb.AttrID

	// Persistent tier (nil when the run has none). storeKey/storeVal are
	// reusable buffers for key rendering and lazy payload materialization;
	// touched only between yields.
	store       StorageTier
	storeKey    []byte
	storeVal    []byte
	storeGets   uint64 // buffer misses served by an existing tier record
	storePuts   uint64 // objects materialized into the tier on first touch
	storeErrors uint64 // tier I/O failures (the run continues on the model)

	queriesServed  uint64
	diskReads      uint64
	bufferHits     uint64
	updatesApplied uint64

	// obsRT, when observability is enabled, receives every refresh-time
	// estimate the server ships (the RT = d̄ + β·s distribution of §3.2).
	// Nil when disabled: Observe on a nil histogram is a free no-op, so
	// the reply hot path pays nothing.
	obsRT *obs.Histogram

	// writeLog, when set, receives every applied attribute write — the feed
	// for IR-over-broadcast report assembly. Nil when no broadcaster is
	// attached, so the update path pays one predictable branch.
	writeLog func(it oodb.Item, now float64)
}

// reqScratch is one client's reusable request-processing storage.
type reqScratch struct {
	order     []oodb.OID  // distinct accessed OIDs, first-seen order
	needOrder []oodb.OID  // distinct needed OIDs, first-seen order
	items     []ReplyItem // reply assembly; consumed before the next request
}

// clientHeat tracks one client's primitive-attribute access counts, from
// which the HC prefetch set is derived.
type clientHeat struct {
	counts [oodb.NumPrimAttrs]uint64
	total  uint64
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.Kernel == nil || cfg.DB == nil {
		panic("server: Config requires Kernel and DB")
	}
	bufObjs := cfg.BufferObjects
	if bufObjs <= 0 {
		bufObjs = DefaultBufferObjects
	}
	diskBps := cfg.DiskBandwidthBps
	if diskBps == 0 {
		diskBps = network.DiskBandwidthBps
	}
	memBps := cfg.MemoryBandwidthBps
	if memBps == 0 {
		memBps = network.MemoryBandwidthBps
	}
	kappa := cfg.PrefetchKappa
	if math.IsNaN(kappa) {
		kappa = DefaultPrefetchKappa
	}
	if cfg.UpdateProb < 0 || cfg.UpdateProb > 1 {
		panic(fmt.Sprintf("server: UpdateProb %v out of [0,1]", cfg.UpdateProb))
	}
	return &Server{
		kernel:           cfg.Kernel,
		db:               cfg.DB,
		buf:              buffer.NewLRU[oodb.OID, struct{}](bufObjs),
		disk:             sim.NewResource(cfg.Kernel, "server-disk", 1),
		diskSecPerObject: float64(oodb.ObjectSize) * 8 / diskBps,
		memSecPerObject:  float64(oodb.ObjectSize) * 8 / memBps,
		refreshObj:       coherence.NewRefreshEstimator(cfg.Beta),
		refreshAttr:      coherence.NewRefreshEstimator(cfg.Beta),
		oracle:           coherence.NewOracle(cfg.DB),
		updateProb:       cfg.UpdateProb,
		updateRnd:        rng.Derive(cfg.Seed, 0x5e7e7),
		prefetchKappa:    kappa,
		store:            cfg.Storage,
		heat:             make(map[int]*clientHeat),
		scratch:          make(map[int]*reqScratch),
		oidStamp:         make(map[oodb.OID]uint64),
		oidIdx:           make(map[oodb.OID]int32),
	}
}

// Oracle exposes the perfect-knowledge error oracle shared with clients.
func (s *Server) Oracle() *coherence.Oracle { return s.oracle }

// SetWriteObserver installs fn to be called with every applied attribute
// write (item, virtual time). The IR-over-broadcast scheme uses this to
// feed its trailing update window. Pass nil to detach.
func (s *Server) SetWriteObserver(fn func(it oodb.Item, now float64)) { s.writeLog = fn }

// DB exposes the underlying database (read-only use by the harness).
func (s *Server) DB() *oodb.Database { return s.db }

// Process evaluates one request inside process p: stage the needed objects
// through buffer/disk, apply the update model, and assemble the reply.
// Transfer of request and reply over the wireless channels is the caller's
// (client's) responsibility, matching the paper's point-to-point flow.
func (s *Server) Process(p *sim.Proc, req Request) Reply {
	if !req.Granularity.Valid() {
		panic("server: request with invalid granularity")
	}
	s.queriesServed++
	s.recordHeat(req)

	sc := s.scratch[req.ClientID]
	if sc == nil {
		sc = &reqScratch{}
		s.scratch[req.ClientID] = sc
	}

	// Stage every object the query evaluates over. The server must read
	// each qualified object to evaluate predicates and project attributes,
	// whether or not the client ended up needing it shipped.
	sc.order = s.collectDistinct(req.Accesses, sc.order[:0])
	for _, oid := range sc.order {
		s.stageObject(p, oid)
	}

	// Update model (§4, sixth dimension): each object accessed by the
	// query is updated with probability U; all attributes the query
	// selected on that object are modified.
	s.applyUpdates(p.Now(), req, sc.order)

	return s.assembleReply(req, sc)
}

// stageObject brings oid into the memory buffer, paying disk or memory
// time.
func (s *Server) stageObject(p *sim.Proc, oid oodb.OID) {
	if _, hit := s.buf.Get(oid); hit {
		s.bufferHits++
		p.Hold(s.memSecPerObject)
		return
	}
	s.diskReads++
	if s.store != nil {
		s.stageDurable(oid)
	}
	s.disk.Use(p, s.diskSecPerObject)
	s.buf.Put(oid, struct{}{})
}

// stageDurable mirrors a buffer miss onto the persistent tier: read the
// object's record, writing it on first touch (the tier fills lazily with
// the workload's actual working set, so a 1M-object database only pays
// disk for what the heat distribution reaches). Tier failures are counted
// and the run continues on the modeled disk — the tier is a measured side
// effect, never a simulated dependency.
func (s *Server) stageDurable(oid oodb.OID) {
	s.storeKey = append(s.storeKey[:0], 'o', ':')
	s.storeKey = strconv.AppendUint(s.storeKey, uint64(oid), 10)
	key := string(s.storeKey)
	_, ok, err := s.store.Get(key)
	if err != nil {
		s.storeErrors++
		return
	}
	if ok {
		s.storeGets++
		return
	}
	if err := s.store.Put(key, s.objectPayload(oid)); err != nil {
		s.storeErrors++
		return
	}
	s.storePuts++
}

// objectPayload renders oid's on-disk image: ObjectSize bytes filled with
// a deterministic oid-derived pattern, reusing one scratch buffer. The
// engine copies what it appends, so reuse is safe.
func (s *Server) objectPayload(oid oodb.OID) []byte {
	if s.storeVal == nil {
		s.storeVal = make([]byte, oodb.ObjectSize)
	}
	for i := 0; i+8 <= len(s.storeVal); i += 8 {
		binary.LittleEndian.PutUint64(s.storeVal[i:], uint64(oid)*0x9e3779b97f4a7c15+uint64(i))
	}
	return s.storeVal
}

// applyUpdates flips the per-object update coin and applies writes. order
// is the distinct-OID first-seen order over req.Accesses. Per-object
// attribute dedup uses a uint16 bitmap (queries only read the <= 12
// declared attributes) over a linear rescan of the read set, preserving
// the first-occurrence write order of the original map-based grouping.
func (s *Server) applyUpdates(now float64, req Request, order []oodb.OID) {
	if s.updateProb == 0 {
		return
	}
	for _, oid := range order {
		if !s.updateRnd.Bool(s.updateProb) {
			continue
		}
		s.updatesApplied++
		var seen uint16
		for _, rd := range req.Accesses {
			if rd.OID != oid {
				continue
			}
			bit := uint16(1) << rd.Attr
			if seen&bit != 0 {
				continue
			}
			seen |= bit
			s.db.Write(oid, rd.Attr)
			s.refreshAttr.ObserveWrite(oodb.AttrItem(oid, rd.Attr), now)
			if s.writeLog != nil {
				s.writeLog(oodb.AttrItem(oid, rd.Attr), now)
			}
		}
		s.refreshObj.ObserveWrite(oodb.ObjectItem(oid), now)
	}
}

// assembleReply builds the downstream items per granularity (§3.1.2–3.1.4).
// The returned Items alias sc.items: the client consumes the reply (copies
// what it keeps) before issuing its next request.
func (s *Server) assembleReply(req Request, sc *reqScratch) Reply {
	now := s.kernel.Now()
	items := sc.items[:0]

	switch req.Granularity {
	case core.AttributeCaching:
		// AC: only the requested attributes of qualified objects.
		for _, rd := range req.Need {
			items = append(items, s.attrReplyItem(rd.OID, rd.Attr, now, false))
		}

	case core.ObjectCaching, core.NoCache:
		// OC: push all attributes of each qualified object — shipped as
		// whole objects. NC ships the same way (a conventional object
		// server); the client just has nowhere durable to cache them.
		sc.needOrder = s.collectDistinct(req.Need, sc.needOrder[:0])
		for _, oid := range sc.needOrder {
			rt := s.refreshObj.RefreshTime(oodb.ObjectItem(oid), now)
			s.obsRT.Observe(rt)
			items = append(items, ReplyItem{
				Item:    oodb.ObjectItem(oid),
				Version: s.db.ObjectVersion(oid),
				Refresh: rt,
			})
		}

	case core.HybridCaching:
		// HC: requested attributes plus the prefetch set — attributes of
		// qualified objects whose access probability clears the threshold.
		// Shipped-set dedup uses one attribute bitmap per distinct needed
		// OID, indexed in step with needOrder via the oidIdx side table.
		prefetch := s.prefetchSet(req.ClientID)
		sc.needOrder = s.collectDistinct(req.Need, sc.needOrder[:0])
		if cap(s.attrBits) < len(sc.needOrder) {
			s.attrBits = make([]uint16, len(sc.needOrder))
		}
		bits := s.attrBits[:len(sc.needOrder)]
		for i := range bits {
			bits[i] = 0
		}
		for _, rd := range req.Need {
			i := s.oidIdx[rd.OID]
			bit := uint16(1) << rd.Attr
			if bits[i]&bit != 0 {
				continue
			}
			bits[i] |= bit
			items = append(items, s.attrReplyItem(rd.OID, rd.Attr, now, false))
		}
		for i, oid := range sc.needOrder {
			for _, attr := range prefetch {
				bit := uint16(1) << attr
				if bits[i]&bit != 0 {
					continue
				}
				bits[i] |= bit
				items = append(items, s.attrReplyItem(oid, attr, now, true))
			}
		}
	}
	sc.items = items
	return Reply{Items: items}
}

func (s *Server) attrReplyItem(oid oodb.OID, attr oodb.AttrID, now float64, prefetched bool) ReplyItem {
	it := oodb.AttrItem(oid, attr)
	rt := s.refreshAttr.RefreshTime(it, now)
	s.obsRT.Observe(rt)
	return ReplyItem{
		Item:       it,
		Version:    s.db.AttrVersion(oid, attr),
		Refresh:    rt,
		Prefetched: prefetched,
	}
}

// recordHeat folds the query's attribute accesses into the client's heat
// profile.
func (s *Server) recordHeat(req Request) {
	h := s.heat[req.ClientID]
	if h == nil {
		h = &clientHeat{}
		s.heat[req.ClientID] = h
	}
	for _, rd := range req.Accesses {
		if rd.Attr < oodb.NumPrimAttrs {
			h.counts[rd.Attr]++
			h.total++
		}
	}
}

// prefetchSet returns the attributes worth prefetching for the client:
// those whose observed access rate is at least μ + κ·σ across the client's
// attribute rates. With no (or too little) history the set is empty — HC
// degenerates gracefully to AC until the profile stabilizes.
func (s *Server) prefetchSet(clientID int) []oodb.AttrID {
	h := s.heat[clientID]
	if h == nil || h.total < prefetchMinSamples {
		return nil
	}
	var mu float64
	var rates [oodb.NumPrimAttrs]float64
	for i, c := range h.counts {
		rates[i] = float64(c) / float64(h.total)
		mu += rates[i]
	}
	mu /= oodb.NumPrimAttrs
	var variance float64
	for _, r := range rates {
		variance += (r - mu) * (r - mu)
	}
	variance /= oodb.NumPrimAttrs
	threshold := mu + s.prefetchKappa*math.Sqrt(variance)
	out := s.prefetchBuf[:0]
	for i, r := range rates {
		if r >= threshold {
			out = append(out, oodb.AttrID(i))
		}
	}
	s.prefetchBuf = out
	return out
}

// PrefetchSet exposes the current prefetch decision for a client
// (diagnostics and tests).
func (s *Server) PrefetchSet(clientID int) []oodb.AttrID { return s.prefetchSet(clientID) }

// collectDistinct appends the distinct OIDs in reads to out, preserving
// first-seen order (determinism for update application and reply layout).
// It bumps oidGen, so at most one collected order is "current" at a time;
// callers that need the order across a yield keep the returned slice.
func (s *Server) collectDistinct(reads []workload.ReadOp, out []oodb.OID) []oodb.OID {
	s.oidGen++
	for _, rd := range reads {
		if s.oidStamp[rd.OID] != s.oidGen {
			s.oidStamp[rd.OID] = s.oidGen
			s.oidIdx[rd.OID] = int32(len(out))
			out = append(out, rd.OID)
		}
	}
	return out
}

// Stats bundles server-side counters for experiment logs. The Storage*
// counters are deterministic facts of the workload (how many buffer
// misses hit an existing tier record vs materialized one), not measured
// latencies — those live in the storage engine's own histograms.
type Stats struct {
	QueriesServed   uint64
	DiskReads       uint64
	BufferHits      uint64
	UpdatesApplied  uint64
	BufferHitRatio  float64
	DiskUtilization float64
	StorageGets     uint64
	StoragePuts     uint64
	StorageErrors   uint64
}

// Register wires the server's load and health into an observability
// registry: cumulative query/disk/update counters, buffer hit ratio, disk
// utilization, and the distribution of refresh-time estimates shipped to
// clients (series server.rt_p50 / server.rt_p90 track its quantiles over
// virtual time). No-op on a disabled registry; when disabled the reply
// path's Observe calls hit a nil histogram and cost nothing.
func (s *Server) Register(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge("server.queries", func() float64 { return float64(s.queriesServed) })
	reg.Gauge("server.disk_reads", func() float64 { return float64(s.diskReads) })
	reg.Gauge("server.updates", func() float64 { return float64(s.updatesApplied) })
	reg.Gauge("server.buffer_hit_ratio", s.buf.HitRatio)
	reg.Gauge("server.disk_utilization", s.disk.Utilization)
	// Refresh times span milliseconds (hot items under heavy update load)
	// to the full run horizon (items never observed written).
	s.obsRT = reg.Histogram("server.refresh_time_s", 1e-3, 1e5)
	reg.Gauge("server.rt_p50", func() float64 { return s.obsRT.Quantile(0.5) })
	reg.Gauge("server.rt_p90", func() float64 { return s.obsRT.Quantile(0.9) })
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	return Stats{
		QueriesServed:   s.queriesServed,
		DiskReads:       s.diskReads,
		BufferHits:      s.bufferHits,
		UpdatesApplied:  s.updatesApplied,
		BufferHitRatio:  s.buf.HitRatio(),
		DiskUtilization: s.disk.Utilization(),
		StorageGets:     s.storeGets,
		StoragePuts:     s.storePuts,
		StorageErrors:   s.storeErrors,
	}
}
