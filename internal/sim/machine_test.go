package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// stepFunc adapts a closure to the Stepper interface for tests.
type stepFunc func(m *Machine)

func (f stepFunc) Step(m *Machine) { f(m) }

// TestMachineHoldMirrorsProc drives the same hold pattern through a Proc
// and a Machine and checks the dispatch traces (virtual times and step
// counts) are identical — the core of the engines' byte-identity claim.
func TestMachineHoldMirrorsProc(t *testing.T) {
	run := func(spawn func(k *Kernel, log *[]float64)) ([]float64, uint64) {
		k := NewKernel()
		var log []float64
		spawn(k, &log)
		k.RunAll()
		k.Drain()
		return log, k.Steps()
	}

	procLog, procSteps := run(func(k *Kernel, log *[]float64) {
		k.Spawn("p", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Hold(1.5)
				*log = append(*log, p.Now())
			}
			p.HoldUntil(100)
			*log = append(*log, p.Now())
			p.HoldUntil(50) // in the past: no-op
			*log = append(*log, p.Now())
		})
	})

	machLog, machSteps := run(func(k *Kernel, log *[]float64) {
		i := 0
		k.SpawnMachine("m", stepFunc(func(m *Machine) {
			for {
				if i > 0 {
					*log = append(*log, m.Now())
				}
				if i < 5 {
					i++
					m.Hold(1.5)
					return
				}
				if i == 5 {
					i++
					if m.HoldUntil(100) {
						return
					}
					continue
				}
				if i == 6 {
					i++
					if m.HoldUntil(50) { // in the past: continue inline
						return
					}
					continue
				}
				m.Finish()
				return
			}
		}))
	})

	if !reflect.DeepEqual(procLog, machLog) {
		t.Fatalf("hold traces differ:\nproc: %v\nmach: %v", procLog, machLog)
	}
	if procSteps != machSteps {
		t.Fatalf("step counts differ: proc %d, mach %d", procSteps, machSteps)
	}
}

// TestMachineResourceFCFS queues procs and machines on one capacity-1
// resource and checks grants come out in arrival order regardless of actor
// kind, with the wait statistics a procs-only population would produce.
func TestMachineResourceFCFS(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 1)
	var order []string

	// Holder occupies the resource for [0, 10).
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Hold(10)
		r.Release()
		order = append(order, "holder")
	})
	// Arrivals at t=1 (proc), t=2 (machine), t=3 (proc), t=4 (machine).
	k.SpawnAt(1, "p1", func(p *Proc) {
		r.Acquire(p)
		p.Hold(5)
		r.Release()
		order = append(order, "p1")
	})
	spawnMachineUser := func(at float64, name string) {
		pc := 0
		k.SpawnMachineAt(at, name, stepFunc(func(m *Machine) {
			for {
				switch pc {
				case 0:
					pc = 1
					if !r.AcquireCall(m) {
						return
					}
				case 1:
					pc = 2
					m.Hold(5)
					return
				case 2:
					r.Release()
					order = append(order, name)
					m.Finish()
					return
				}
			}
		}))
	}
	spawnMachineUser(2, "m1")
	k.SpawnAt(3, "p2", func(p *Proc) {
		r.Acquire(p)
		p.Hold(5)
		r.Release()
		order = append(order, "p2")
	})
	spawnMachineUser(4, "m2")

	k.RunAll()
	k.Drain()

	want := []string{"holder", "p1", "m1", "p2", "m2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("completion order = %v, want %v", order, want)
	}
	// Waits: p1 9, m1 13, p2 17, m2 21 → mean over 5 acquires = 12.
	if got, want := r.MeanWait(), 60.0/5; got != want {
		t.Fatalf("MeanWait = %g, want %g", got, want)
	}
	if k.LiveMachines() != 0 {
		t.Fatalf("LiveMachines = %d after Drain", k.LiveMachines())
	}
}

// TestDrainKillsHalfResumedMachines leaves machines suspended at different
// wait points (holding, queued on a resource, finished) and checks Drain
// retires them in spawn order without stepping any of them again.
func TestDrainKillsHalfResumedMachines(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 1)
	steps := map[string]int{}

	// m0 holds the resource forever (suspended in an infinite hold).
	hold0 := 0
	k.SpawnMachine("m0", stepFunc(func(m *Machine) {
		steps["m0"]++
		if hold0 == 0 {
			hold0 = 1
			if !r.AcquireCall(m) {
				return
			}
		}
		m.Hold(1e9)
	}))
	// m1 queues behind it and never gets the grant.
	k.SpawnMachine("m1", stepFunc(func(m *Machine) {
		steps["m1"]++
		if !r.AcquireCall(m) {
			return
		}
		t.Error("m1 acquired a resource that is never released")
	}))
	// m2 finishes cleanly before the drain.
	k.SpawnMachine("m2", stepFunc(func(m *Machine) {
		steps["m2"]++
		m.Finish()
	}))
	// p0 is a proc suspended in a hold, interleaved in the kill order.
	k.Spawn("p0", func(p *Proc) {
		for {
			p.Hold(1e9)
		}
	})

	k.Run(100)
	if k.LiveMachines() != 2 { // m0 and m1; m2 finished
		t.Fatalf("LiveMachines before Drain = %d, want 2", k.LiveMachines())
	}
	k.Drain()
	if k.LiveMachines() != 0 || k.LiveProcs() != 0 {
		t.Fatalf("after Drain: %d machines, %d procs live",
			k.LiveMachines(), k.LiveProcs())
	}
	want := map[string]int{"m0": 1, "m1": 1, "m2": 1}
	if !reflect.DeepEqual(steps, want) {
		t.Fatalf("step counts = %v, want %v", steps, want)
	}
	// A drained kernel must be reusable and killed machines must not step.
	k.RunAll()
	if !reflect.DeepEqual(steps, want) {
		t.Fatalf("killed machine stepped after Drain: %v", steps)
	}
}

// TestMachineCancelWake checks a revoked timer never fires and a fresh
// hold after cancellation does.
func TestMachineCancelWake(t *testing.T) {
	k := NewKernel()
	var fired []float64
	pc := 0
	var mm *Machine
	mm = k.SpawnMachine("m", stepFunc(func(m *Machine) {
		fired = append(fired, m.Now())
		switch pc {
		case 0:
			pc = 1
			m.Hold(5) // will be revoked from kernel context at t=1
		case 1:
			m.Finish()
		}
	}))
	k.After(1, func() {
		mm.CancelWake()
		mm.Hold(10) // replacement timer: fires at t=11
	})
	k.RunAll()
	k.Drain()
	want := []float64{0, 11}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("steps fired at %v, want %v", fired, want)
	}
}

// TestMachineSpawnValidation covers the nil-body panic.
func TestMachineSpawnValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnMachine(nil) did not panic")
		}
	}()
	NewKernel().SpawnMachine("m", nil)
}

// holdLoop is an alloc-free machine body holding forever; used by the
// benchmarks below.
type holdLoop struct{}

func (holdLoop) Step(m *Machine) { m.Hold(1) }

// BenchmarkKernelStateMachineHoldLoop is the Machine counterpart of
// BenchmarkKernelHoldLoop: one actor holding forever, measured per event.
// The difference between the two numbers is the goroutine rendezvous the
// state-machine engine eliminates.
func BenchmarkKernelStateMachineHoldLoop(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	k.SpawnMachine("m", holdLoop{})
	b.ResetTimer()
	k.Run(float64(b.N))
	b.StopTimer()
	k.Drain()
}

// resourceLoop contends a capacity-1 resource, mirroring the proc bodies
// of BenchmarkKernelResourceContention.
type resourceLoop struct {
	r  *Resource
	pc int
}

func (l *resourceLoop) Step(m *Machine) {
	for {
		switch l.pc {
		case 0:
			l.pc = 1
			if !l.r.AcquireCall(m) {
				return
			}
		case 1:
			l.pc = 2
			m.Hold(1)
			return
		case 2:
			l.r.Release()
			l.pc = 0
			m.Hold(1)
			return
		}
	}
}

// BenchmarkKernelStateMachineResourceContention is the Machine counterpart
// of BenchmarkKernelResourceContention: 10 actors contending FCFS for a
// capacity-1 facility, measured per event.
func BenchmarkKernelStateMachineResourceContention(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	r := NewResource(k, "chan", 1)
	for i := 0; i < 10; i++ {
		k.SpawnMachine("m", &resourceLoop{r: r})
	}
	b.ResetTimer()
	k.Run(float64(b.N))
	b.StopTimer()
	k.Drain()
}

// BenchmarkKernelStateMachineManyMachines is the Machine counterpart of
// BenchmarkKernelManyProcs: many short-lived actors, spawn/finish path.
func BenchmarkKernelStateMachineManyMachines(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 64; j++ {
			h := 0
			k.SpawnMachineAt(float64(j%7), "m", stepFunc(func(m *Machine) {
				if h++; h > 16 {
					m.Finish()
					return
				}
				m.Hold(1)
			}))
		}
		k.RunAll()
	}
}

// Example-style sanity check that a machine and proc population produce the
// same MM1-style waiting pattern; keeps the two engines honest in -short
// runs without the full experiment differential test.
func TestMachineProcTwinResourceStats(t *testing.T) {
	build := func(machines bool) (*Kernel, *Resource) {
		k := NewKernel()
		r := NewResource(k, "res", 1)
		for i := 0; i < 7; i++ {
			at := float64(i) * 0.3
			if machines {
				l := &resourceLoop{r: r}
				k.SpawnMachineAt(at, fmt.Sprintf("m%d", i), l)
			} else {
				k.SpawnAt(at, fmt.Sprintf("p%d", i), func(p *Proc) {
					for {
						r.Use(p, 1)
						p.Hold(1)
					}
				})
			}
		}
		k.Run(200)
		return k, r
	}
	kp, rp := build(false)
	km, rm := build(true)
	defer kp.Drain()
	defer km.Drain()
	if rp.Acquires() != rm.Acquires() {
		t.Fatalf("acquires: proc %d, mach %d", rp.Acquires(), rm.Acquires())
	}
	if rp.MeanWait() != rm.MeanWait() {
		t.Fatalf("mean wait: proc %g, mach %g", rp.MeanWait(), rm.MeanWait())
	}
	if rp.Utilization() != rm.Utilization() {
		t.Fatalf("utilization: proc %g, mach %g", rp.Utilization(), rm.Utilization())
	}
	if kp.Steps() != km.Steps() {
		t.Fatalf("steps: proc %d, mach %d", kp.Steps(), km.Steps())
	}
}
