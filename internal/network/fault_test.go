package network

import (
	"math"
	"testing"
)

func TestFaultConfigEnabled(t *testing.T) {
	cases := []struct {
		cfg  FaultConfig
		want bool
	}{
		{FaultConfig{}, false},
		{FaultConfig{Seed: 42}, false},
		{FaultConfig{LossProb: 0.1}, true},
		{FaultConfig{CorruptProb: 0.01}, true},
		{FaultConfig{BurstFraction: 0.2}, true},
	}
	for i, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Fatalf("case %d: Enabled() = %v, want %v", i, got, c.want)
		}
	}
}

func TestDisabledConfigBuildsNoModel(t *testing.T) {
	if m := NewFaultModel(FaultConfig{Seed: 1}, 1); m != nil {
		t.Fatal("disabled config must build no model")
	}
	// A nil model reports zero stats rather than panicking.
	if s := (*FaultModel)(nil).Stats(); s.Transmitted() != 0 {
		t.Fatalf("nil model stats = %+v", s)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	bad := []FaultConfig{
		{LossProb: -0.1},
		{LossProb: 1.5},
		{CorruptProb: 2},
		{BurstFraction: 1}, // must be < 1: a permanently-bad channel hangs every retry loop
		{BurstFraction: -0.5},
		{BurstFraction: 0.2, MeanBadSeconds: -1},
		{LossProb: 0.1, BadLossProb: 1.5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d (%+v) did not panic", i, cfg)
				}
			}()
			NewFaultModel(cfg, 1)
		}()
	}
}

// Same config and seed must produce the identical outcome sequence — the
// property the Experiment #7 byte-identical-tables guarantee rests on.
func TestFaultModelDeterminism(t *testing.T) {
	cfg := FaultConfig{LossProb: 0.2, CorruptProb: 0.05, BurstFraction: 0.3, Seed: 99}
	a := NewFaultModel(cfg, 1)
	b := NewFaultModel(cfg, 1)
	for i := 0; i < 5000; i++ {
		now := float64(i) * 0.37
		if oa, ob := a.Transmit(now), b.Transmit(now); oa != ob {
			t.Fatalf("frame %d: %v vs %v", i, oa, ob)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// Distinct stream IDs (the two channel directions) must draw independently.
func TestFaultModelStreamsIndependent(t *testing.T) {
	cfg := FaultConfig{LossProb: 0.5, Seed: 5}
	up := NewFaultModel(cfg, 1)
	down := NewFaultModel(cfg, 2)
	same := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if up.Transmit(float64(i)) == down.Transmit(float64(i)) {
			same++
		}
	}
	if same == n {
		t.Fatal("uplink and downlink outcome sequences are identical")
	}
}

func TestBernoulliLossRate(t *testing.T) {
	m := NewFaultModel(FaultConfig{LossProb: 0.1, Seed: 3}, 1)
	const n = 20000
	for i := 0; i < n; i++ {
		m.Transmit(float64(i))
	}
	got := float64(m.Stats().Lost) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("empirical loss rate %.4f, want ~0.10", got)
	}
	if m.Stats().Corrupted != 0 {
		t.Fatalf("corruption disabled but %d frames corrupted", m.Stats().Corrupted)
	}
}

func TestCorruptionOnlyHitsDeliveredFrames(t *testing.T) {
	m := NewFaultModel(FaultConfig{CorruptProb: 0.2, Seed: 11}, 1)
	const n = 20000
	for i := 0; i < n; i++ {
		m.Transmit(float64(i))
	}
	s := m.Stats()
	if s.Lost != 0 {
		t.Fatalf("loss disabled but %d frames lost", s.Lost)
	}
	got := float64(s.Corrupted) / n
	if math.Abs(got-0.2) > 0.012 {
		t.Fatalf("empirical corruption rate %.4f, want ~0.20", got)
	}
}

// The Gilbert–Elliott chain should spend roughly BurstFraction of its time
// in the Bad state, and a Bad-state frame is lost with BadLossProb = 1 by
// default.
func TestGilbertElliottStationaryFraction(t *testing.T) {
	m := NewFaultModel(FaultConfig{BurstFraction: 0.25, MeanBadSeconds: 4, Seed: 17}, 1)
	const (
		dt    = 0.1
		steps = 400000
	)
	bad := 0
	for i := 0; i < steps; i++ {
		if m.InBadState(float64(i) * dt) {
			bad++
		}
	}
	got := float64(bad) / steps
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("Bad-state fraction %.4f, want ~0.25", got)
	}
}

func TestBadStateLosesEverythingByDefault(t *testing.T) {
	// BurstFraction close to 1 keeps the chain almost always Bad.
	m := NewFaultModel(FaultConfig{BurstFraction: 0.99, MeanBadSeconds: 1000, Seed: 23}, 1)
	// Walk into the Bad state first.
	start := 0.0
	for !m.InBadState(start) {
		start += 1.0
		if start > 1e6 {
			t.Fatal("chain never entered the Bad state")
		}
	}
	for i := 0; i < 100; i++ {
		// Stay within the long Bad sojourn.
		if out := m.Transmit(start + float64(i)*0.001); out != FrameLost {
			t.Fatalf("Bad-state frame %d: %v, want lost", i, out)
		}
	}
}

// Outage bursts must actually cluster: with the same stationary loss mass,
// the burst model's losses should have longer runs than Bernoulli's.
func TestBurstsCluster(t *testing.T) {
	runs := func(m *FaultModel) (maxRun int) {
		run := 0
		for i := 0; i < 50000; i++ {
			if m.Transmit(float64(i)*0.5) == FrameLost {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
		}
		return maxRun
	}
	bernoulli := runs(NewFaultModel(FaultConfig{LossProb: 0.2, Seed: 31}, 1))
	burst := runs(NewFaultModel(FaultConfig{BurstFraction: 0.2, MeanBadSeconds: 20, Seed: 31}, 1))
	if burst <= bernoulli {
		t.Fatalf("max loss run: burst %d <= bernoulli %d", burst, bernoulli)
	}
}

func BenchmarkFaultTransmit(b *testing.B) {
	m := NewFaultModel(FaultConfig{LossProb: 0.05, CorruptProb: 0.01,
		BurstFraction: 0.1, Seed: 1}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Transmit(float64(i) * 0.05)
	}
}
