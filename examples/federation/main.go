// Federation: the multi-server extension the paper's conclusion proposes
// (§6) — the database is partitioned across several servers in different
// cells; each mobile client talks to its cell's *contact server*, which
// relays reads owned by other servers over a fixed backbone and keeps a
// lease-respecting relay cache of remote items.
//
// The example measures what the relay cache buys: clients whose interests
// spill across partitions pay two backbone hops per remote read without
// it, and almost nothing with it.
//
//	go run ./examples/federation
package main

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	numObjects = 2000
	numServers = 4
	perCell    = 2 // mobile clients per cell
	simDays    = 0.5
)

func main() {
	fmt.Printf("federated OODB: %d objects range-partitioned over %d servers,\n",
		numObjects, numServers)
	fmt.Printf("%d clients per cell, hybrid caching, EWMA-0.5\n\n", perCell)

	fmt.Printf("%-22s  %8s  %10s  %12s  %12s\n",
		"configuration", "hit %", "resp (s)", "relay hit%", "relayed")
	for _, relayObjects := range []int{0, 400} {
		hit, resp, relayHit, relayed := run(relayObjects)
		name := "no relay cache"
		if relayObjects > 0 {
			name = fmt.Sprintf("relay cache %d objs", relayObjects)
		}
		fmt.Printf("%-22s  %8.1f  %10.3f  %12.1f  %12d\n",
			name, 100*hit, resp, 100*relayHit, relayed)
	}
	fmt.Println("\nthe contact server \"requests and even caches items from other")
	fmt.Println("remote servers on behalf of the client\" — §6 of the paper.")
}

func run(relayObjects int) (hit, resp, relayHitRatio float64, relayed uint64) {
	const seed = 11
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{NumObjects: numObjects, RelSeed: seed})
	cluster := federation.New(federation.Config{
		Kernel:            k,
		DB:                db,
		NumServers:        numServers,
		UpdateProb:        0.1,
		Seed:              seed,
		RelayCacheObjects: relayObjects,
	})

	horizon := simDays * workload.SecondsPerDay
	clientMetrics := make([]*metrics.Client, 0, numServers*perCell)
	for cell := 0; cell < numServers; cell++ {
		up := network.NewChannel(k, fmt.Sprintf("up-%d", cell), network.WirelessBandwidthBps)
		down := network.NewChannel(k, fmt.Sprintf("down-%d", cell), network.WirelessBandwidthBps)
		for j := 0; j < perCell; j++ {
			id := cell*perCell + j
			// Clients in the same cell share a neighbourhood of
			// interests (one hot set per cell) that spans the whole
			// partitioned database, so most reads are remote to the
			// cell and cell-mates benefit from each other's relay
			// traffic.
			heat := workload.NewSkewedHeat(numObjects, rng.Derive(seed, uint64(cell)).Uint64())
			gen := workload.NewQueryGen(workload.QueryGenConfig{
				Kind: workload.Associative, Heat: heat, DB: db,
			})
			m := &metrics.Client{}
			clientMetrics = append(clientMetrics, m)
			cl := client.New(client.Config{
				ID:          id,
				Kernel:      k,
				Server:      cluster.Contact(cell),
				Up:          up,
				Down:        down,
				Granularity: core.HybridCaching,
				Policy:      replacement.NewEWMA(replacement.DefaultEWMAAlpha),
				Gen:         gen,
				Arrival:     workload.NewPoisson(0.01),
				Metrics:     m,
				Seed:        rng.Derive(seed, 1000+uint64(id)).Uint64(),
				Horizon:     horizon,
			})
			cl.Start()
		}
	}

	k.RunAll()
	k.Drain()

	var agg metrics.Aggregate
	for _, m := range clientMetrics {
		agg.Merge(m)
	}
	var hits, misses uint64
	for i := 0; i < numServers; i++ {
		h, m, r := cluster.RelayStats(i)
		hits += h
		misses += m
		relayed += r
	}
	if hits+misses > 0 {
		relayHitRatio = float64(hits) / float64(hits+misses)
	}
	return agg.HitRatio(), agg.MeanResponse(), relayHitRatio, relayed
}
