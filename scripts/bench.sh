#!/usr/bin/env bash
# bench.sh — run the performance-engine benchmarks and record the results.
#
# Two suites, each with its own machine-readable summary at the repo root:
#
#   kernel  ns/event and allocs/event of the discrete-event core, the
#           channel fault model's per-frame cost, plus the parallel sweep
#           benchmark (wall-clock of a 16-config evaluation slice at pool
#           sizes 1/2/4/8)                        -> BENCH_kernel.json
#   model   the replacement-policy hot path: ns/access, ns/victim and the
#           full eviction cycle for every indexed policy against its
#           retained scanCore reference twin       -> BENCH_model.json
#   fleet   the multi-cell fleet engine: wall-clock and Mevents/s of a
#           100-client run at 1/2/4/8 cells plus the relay-cache point
#           (cells scale across the worker pool), and the Proc-vs-SM
#           engine race at 100 and 1000 clients    -> BENCH_fleet.json
#   storage the log-structured persistence engine: point reads against a
#           100K-record store, group-committed durable inserts, and
#           cold-start log replay (the ROADMAP's file-backed regime:
#           insert < 20ms, get < 4ms)              -> BENCH_storage.json
#
# Environment knobs:
#   BENCH_TIME          go -benchtime for the kernel benches   (default 200x)
#   BENCH_MODEL_TIME    go -benchtime for the model benches    (default 20000x)
#   BENCH_FLEET_TIME    go -benchtime for the fleet benches    (default 1x)
#   BENCH_STORAGE_TIME  go -benchtime for the storage benches  (default 100x)
#   BENCH_COUNT         go -count repetitions                  (default 1)
#   SKIP_SWEEP        non-empty skips the (slow) full-sweep benchmark
#   SKIP_MODEL        non-empty skips the model suite
#   SKIP_FLEET        non-empty skips the fleet suite
#   SKIP_STORAGE      non-empty skips the storage suite
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-200x}"
BENCH_MODEL_TIME="${BENCH_MODEL_TIME:-20000x}"
BENCH_FLEET_TIME="${BENCH_FLEET_TIME:-1x}"
BENCH_STORAGE_TIME="${BENCH_STORAGE_TIME:-100x}"
BENCH_COUNT="${BENCH_COUNT:-1}"

# emit_json RAW OUT — distill `go test -bench` output into a JSON summary.
emit_json() {
    awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      entry = entry sprintf(", \"bytes_per_op\": %s", $(i - 1))
        if ($i == "allocs/op") entry = entry sprintf(", \"allocs_per_op\": %s", $(i - 1))
    }
    entry = entry "}"
    entries[++n] = entry
}
END {
    printf("{\n  \"date\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n", date, goos, goarch, cpu)
    for (i = 1; i <= n; i++)
        printf("%s%s\n", entries[i], i < n ? "," : "")
    printf("  ]\n}\n")
}' "$1" > "$2"
    echo "wrote $2 ($(grep -c '"name"' "$2") benchmarks)"
}

raw="$(mktemp)"
sweep="$(mktemp)"
trap 'rm -f "$raw" "$sweep"' EXIT

# The full-sweep benchmark (a 16-config evaluation slice on the parallel
# runner) runs once and lands in both summaries: it is the kernel suite's
# wall-clock anchor and the model suite's end-to-end proof that hot-path
# wins survive composition into whole simulations.
if [ -z "${SKIP_SWEEP:-}" ]; then
    go test -run '^$' -bench 'FullSweep' -benchmem -benchtime 1x . | tee "$sweep"
fi

go test -run '^$' -bench 'Kernel' -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/sim | tee "$raw"
# The fault model sits on the per-frame hot path of every faulted
# transmission; track its cost next to the kernel numbers.
go test -run '^$' -bench 'FaultTransmit' -benchmem \
    -count "$BENCH_COUNT" ./internal/network | tee -a "$raw"
cat "$sweep" >> "$raw"
emit_json "$raw" BENCH_kernel.json

if [ -z "${SKIP_MODEL:-}" ]; then
    go test -run '^$' -bench 'Model' -benchmem \
        -benchtime "$BENCH_MODEL_TIME" -count "$BENCH_COUNT" \
        ./internal/replacement | tee "$raw"
    cat "$sweep" >> "$raw"
    emit_json "$raw" BENCH_model.json
fi

if [ -z "${SKIP_FLEET:-}" ]; then
    go test -run '^$' -bench '^BenchmarkFleet' -benchmem \
        -benchtime "$BENCH_FLEET_TIME" -count "$BENCH_COUNT" . | tee "$raw"
    emit_json "$raw" BENCH_fleet.json
fi

# The storage suite measures real disk I/O (group-committed inserts are
# fsync-bound), so its numbers are the most machine-sensitive of the
# four; benchguard holds them to the same loose regression factor.
if [ -z "${SKIP_STORAGE:-}" ]; then
    go test -run '^$' -bench '^BenchmarkStorage(Get|Insert|Recover)$' -benchmem \
        -benchtime "$BENCH_STORAGE_TIME" -count "$BENCH_COUNT" \
        ./internal/storage | tee "$raw"
    emit_json "$raw" BENCH_storage.json
fi
