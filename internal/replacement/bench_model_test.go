package replacement

import (
	"fmt"
	"testing"
)

// Model benchmarks compare the indexed policies ("opt") against their
// retained scanCore twins ("ref") on the model hot path. EvictionHeavy is
// the acceptance benchmark: a cache at capacity where every insertion
// forces a victim search plus an eviction (pressure 1).

var benchSpecs = []string{
	"lru", "mru", "fifo", "lru-3", "lrd", "mean", "win-10", "ewma-0.5",
}

func benchPolicy(b *testing.B, spec, impl string) Policy {
	b.Helper()
	switch impl {
	case "opt":
		factory, err := Parse(spec)
		if err != nil {
			b.Fatalf("Parse(%q): %v", spec, err)
		}
		return factory()
	case "ref":
		p, err := newReferencePolicy(spec)
		if err != nil {
			b.Fatalf("newReferencePolicy(%q): %v", spec, err)
		}
		return p
	default:
		b.Fatalf("unknown impl %q", impl)
		return nil
	}
}

// fillPolicy inserts n items with interleaved re-accesses so duration
// policies carry real histories (not just open first intervals).
func fillPolicy(p Policy, n int) float64 {
	now := 0.0
	for i := 0; i < n; i++ {
		now += 1.0
		p.OnInsert(obj(i), now)
	}
	for i := 0; i < n; i += 3 {
		now += 0.5
		p.OnAccess(obj(i), now)
	}
	return now
}

// BenchmarkModelAccess measures ns/access on a resident item (the touch
// path: state update plus heap re-key for indexed policies).
func BenchmarkModelAccess(b *testing.B) {
	const n = 1024
	for _, spec := range benchSpecs {
		for _, impl := range []string{"opt", "ref"} {
			b.Run(fmt.Sprintf("%s/%s", spec, impl), func(b *testing.B) {
				p := benchPolicy(b, spec, impl)
				now := fillPolicy(p, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					now += 1.0
					p.OnAccess(obj(i%n), now)
				}
			})
		}
	}
}

// BenchmarkModelVictim measures one victim selection (no mutation) at
// three cache sizes.
func BenchmarkModelVictim(b *testing.B) {
	for _, spec := range benchSpecs {
		for _, n := range []int{256, 1024, 4096} {
			for _, impl := range []string{"opt", "ref"} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", spec, n, impl), func(b *testing.B) {
					p := benchPolicy(b, spec, impl)
					now := fillPolicy(p, n)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						now += 1.0
						p.Victim(now)
					}
				})
			}
		}
	}
}

// BenchmarkModelEvictionHeavy measures the full replacement cycle at a
// cache permanently at capacity: every insertion selects a victim, evicts
// it, and admits a new item (pressure 1).
func BenchmarkModelEvictionHeavy(b *testing.B) {
	for _, spec := range benchSpecs {
		for _, n := range []int{256, 1024, 4096} {
			for _, impl := range []string{"opt", "ref"} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", spec, n, impl), func(b *testing.B) {
					p := benchPolicy(b, spec, impl)
					now := fillPolicy(p, n)
					next := n
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						now += 1.0
						v, ok := p.Victim(now)
						if !ok {
							b.Fatal("no victim at capacity")
						}
						p.Remove(v)
						p.OnInsert(obj(next), now)
						next++
					}
				})
			}
		}
	}
}
