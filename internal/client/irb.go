package client

import (
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/oodb"
)

// This file is the client half of the IR-over-broadcast coherence scheme
// (IRBroadcastStrategy): the server-side broadcaster (the experiment
// harness) pushes, every report period, the set of items written during
// the trailing report window over a dedicated broadcast downlink, and
// calls ApplyIRBroadcast on every connected client that received the
// frame — or MissIRBroadcast on one that lost it to channel faults.
//
// The windowed semantics follow Barbará & Imieliński's broadcasting-
// timestamps variant: as long as the gap since the client's last received
// report stays inside the window, each report invalidates exactly the
// cached items it names. Once the gap grows past what the next report can
// cover — disconnection, or frame loss under the PR 3 fault model — the
// client can no longer bound its staleness and *force-revalidates*: every
// cached lease is voided in place, so the copies survive for disconnected
// operation but must be revalidated against the server before counting as
// hits again. This is the graceful middle ground between the paper's
// lazy leases and the legacy InvalidationReportStrategy, which drops the
// whole cache on a missed report.

// irSlack absorbs floating-point drift when a report lands exactly one
// window after the previous one.
const irSlack = 1e-9

// ApplyIRBroadcast delivers one IR-over-broadcast report to the client:
// items is the canonical-order set of attribute items written during the
// report's trailing window, wireBytes the report's frame size (receive
// energy). The harness must call this only while the client is connected
// and only under IRBroadcastStrategy.
func (c *Client) ApplyIRBroadcast(now float64, items []oodb.Item, wireBytes int) {
	if c.coherenceMode != coherence.IRBroadcastStrategy {
		panic("client: IR-over-broadcast report delivered to a non-irb client")
	}
	c.energyJoules += network.RxEnergy(wireBytes)
	c.irbReports++
	if now-c.irLastGood > c.irWindow+irSlack {
		// The report's window does not reach back to the last report this
		// client saw: writes in the gap are unrecoverable, revalidate.
		c.forceRevalidate(now)
		c.irLastGood = now
		return
	}
	c.irLastGood = now
	// Incremental invalidation: drop exactly the named items, mapped onto
	// the client's caching granularity (an attribute write invalidates the
	// whole cached object under OC/NC). Report items arrive in canonical
	// (OID, Attr) order, so removal order — which shapes replacement-policy
	// tie-breaks — is reproducible.
	for _, it := range items {
		target := core.CoverItem(c.granularity, it.OID, it.Attr)
		if c.store != nil {
			if _, ok := c.store.Peek(target); ok {
				c.store.Remove(target)
			}
		}
		if _, ok := c.membuf.Peek(target); ok {
			c.membuf.Remove(target)
		}
	}
}

// MissIRBroadcast tells the client it was tuned in but failed to decode a
// report frame (loss or CRC-detected corruption; rxBytes > 0 when the
// corrupted frame was received in full and its radio energy spent).
// period is the broadcast period: if even the *next* report's window will
// not reach back to the last received report, waiting cannot recover the
// gap and the client force-revalidates immediately.
func (c *Client) MissIRBroadcast(now, period float64, rxBytes int) {
	if c.coherenceMode != coherence.IRBroadcastStrategy {
		panic("client: IR-over-broadcast miss delivered to a non-irb client")
	}
	if rxBytes > 0 {
		c.energyJoules += network.RxEnergy(rxBytes)
	}
	c.irbMissed++
	if now-c.irLastGood+period > c.irWindow+irSlack {
		c.forceRevalidate(now)
		// Every lease is voided, so staleness is bounded from here on; the
		// next received report only needs to cover writes after this point.
		c.irLastGood = now
	}
}

// forceRevalidate voids every cached lease in place: storage entries keep
// their bytes (still usable for disconnected/degraded serving) but expire
// immediately, so the next connected access revalidates them at the
// server; the volatile memory buffer is simply dropped.
func (c *Client) forceRevalidate(now float64) {
	c.forcedReval++
	if c.store != nil {
		c.store.ForEach(func(it oodb.Item, e *core.Entry) bool {
			if e.ExpiresAt > now {
				e.ExpiresAt = now
			}
			return true
		})
	}
	c.membuf.Clear()
}

// IRBReports reports how many IR-over-broadcast reports the client
// received.
func (c *Client) IRBReports() uint64 { return c.irbReports }

// IRBMissed reports how many report frames the client lost to channel
// faults while tuned in.
func (c *Client) IRBMissed() uint64 { return c.irbMissed }

// ForcedRevalidations reports how many times the client voided every
// cached lease after an unrecoverable report gap.
func (c *Client) ForcedRevalidations() uint64 { return c.forcedReval }
