package network

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/rng"
)

// This file adds an unreliable-channel fault model on top of the idealized
// 19.2 Kbps links of §4. The paper only treats disconnection as a coarse
// per-day schedule (Experiment #6); real mobile links also drop and corrupt
// individual frames. The model is deterministic in (config, seed, virtual
// time) so faulted experiment tables are byte-for-byte reproducible, and it
// is entirely additive: with a disabled config no FaultModel is built and
// every transmission path is untouched.
//
// Three failure processes compose per transmitted frame (DESIGN.md §9):
//
//   - Bernoulli loss: each frame is independently lost with probability
//     LossProb while the channel is in its Good state.
//   - Burst outages: a two-state Gilbert–Elliott chain alternates between
//     Good and Bad states with exponentially distributed sojourn times;
//     frames sent in the Bad state are lost with probability BadLossProb
//     (default 1 — a hard outage).
//   - Corruption: a frame that survives loss is corrupted in flight with
//     probability CorruptProb. The 11-byte header's CRC detects the damage
//     at the receiver, so a corrupted frame costs its full transfer time
//     before being discarded — unlike a lost frame, which simply never
//     arrives.

// FaultOutcome is the fate of one transmitted frame.
type FaultOutcome int

const (
	// FrameDelivered means the frame arrived intact.
	FrameDelivered FaultOutcome = iota
	// FrameLost means the frame vanished in flight (receiver sees nothing
	// and can only detect the loss by timeout).
	FrameLost
	// FrameCorrupted means the frame arrived but failed its CRC check and
	// was discarded by the receiver.
	FrameCorrupted
)

// String renders the outcome name.
func (o FaultOutcome) String() string {
	switch o {
	case FrameDelivered:
		return "delivered"
	case FrameLost:
		return "lost"
	case FrameCorrupted:
		return "corrupted"
	default:
		return "outcome(?)"
	}
}

// DefaultMeanBadSeconds is the mean Bad-state (burst outage) duration when
// bursts are enabled without an explicit sojourn time.
const DefaultMeanBadSeconds = 10.0

// FaultConfig parameterizes one channel's fault processes. The zero value
// is a perfect channel (Enabled reports false and no model is built).
type FaultConfig struct {
	// LossProb is the independent per-frame loss probability in the Good
	// state (Bernoulli loss).
	LossProb float64
	// CorruptProb is the probability a delivered frame is corrupted in
	// flight and rejected by the receiver's CRC check.
	CorruptProb float64
	// BurstFraction is the stationary fraction of time the Gilbert–Elliott
	// chain spends in the Bad state (0 disables bursts, must be < 1).
	BurstFraction float64
	// MeanBadSeconds is the mean Bad-state sojourn (DefaultMeanBadSeconds
	// if zero). The Good-state mean follows from BurstFraction:
	// meanGood = meanBad·(1−f)/f.
	MeanBadSeconds float64
	// BadLossProb is the per-frame loss probability in the Bad state
	// (1 if zero — a total outage).
	BadLossProb float64
	// Seed drives the model's random draws; the two channel directions
	// derive independent streams from it.
	Seed uint64
}

// Enabled reports whether the config describes any fault process at all.
// A disabled config must not change simulation behaviour in any way.
func (c FaultConfig) Enabled() bool {
	return c.LossProb > 0 || c.CorruptProb > 0 || c.BurstFraction > 0
}

// validate panics on out-of-range parameters.
func (c FaultConfig) validate() {
	if c.LossProb < 0 || c.LossProb > 1 {
		panic(fmt.Sprintf("network: LossProb %v out of [0,1]", c.LossProb))
	}
	if c.CorruptProb < 0 || c.CorruptProb > 1 {
		panic(fmt.Sprintf("network: CorruptProb %v out of [0,1]", c.CorruptProb))
	}
	if c.BurstFraction < 0 || c.BurstFraction >= 1 {
		panic(fmt.Sprintf("network: BurstFraction %v out of [0,1)", c.BurstFraction))
	}
	if c.MeanBadSeconds < 0 {
		panic(fmt.Sprintf("network: MeanBadSeconds %v negative", c.MeanBadSeconds))
	}
	if c.BadLossProb < 0 || c.BadLossProb > 1 {
		panic(fmt.Sprintf("network: BadLossProb %v out of [0,1]", c.BadLossProb))
	}
}

// FaultStats snapshots a model's frame counters.
type FaultStats struct {
	Delivered uint64
	Lost      uint64
	Corrupted uint64
}

// Transmitted returns the total number of frames the model judged.
func (s FaultStats) Transmitted() uint64 { return s.Delivered + s.Lost + s.Corrupted }

// FaultModel decides the fate of frames on one channel direction. It is
// single-threaded like the rest of the simulation: calls must be made in
// non-decreasing virtual time, which the event kernel guarantees.
type FaultModel struct {
	cfg      FaultConfig
	rnd      *rng.Stream
	meanGood float64
	meanBad  float64
	badLoss  float64

	bad      bool
	nextFlip float64 // virtual time of the next Gilbert–Elliott transition

	stats FaultStats
}

// NewFaultModel builds a model for one channel direction. streamID keys
// the direction's RNG substream so the uplink and downlink draw
// independently from the same root seed. Returns nil for a disabled
// config, which callers treat as a perfect channel.
func NewFaultModel(cfg FaultConfig, streamID uint64) *FaultModel {
	cfg.validate()
	if !cfg.Enabled() {
		return nil
	}
	m := &FaultModel{
		cfg:      cfg,
		rnd:      rng.Derive(cfg.Seed, 0xfa017ed0+streamID),
		badLoss:  cfg.BadLossProb,
		nextFlip: math.Inf(1),
	}
	if m.badLoss == 0 {
		m.badLoss = 1
	}
	if cfg.BurstFraction > 0 {
		m.meanBad = cfg.MeanBadSeconds
		if m.meanBad == 0 {
			m.meanBad = DefaultMeanBadSeconds
		}
		m.meanGood = m.meanBad * (1 - cfg.BurstFraction) / cfg.BurstFraction
		// The chain starts in the Good state at t = 0.
		m.nextFlip = m.rnd.Exp(1 / m.meanGood)
	}
	return m
}

// advance runs the Gilbert–Elliott chain up to virtual time now.
func (m *FaultModel) advance(now float64) {
	for m.nextFlip <= now {
		m.bad = !m.bad
		mean := m.meanGood
		if m.bad {
			mean = m.meanBad
		}
		m.nextFlip += m.rnd.Exp(1 / mean)
	}
}

// Transmit judges one frame sent at virtual time now and updates the
// counters. The frame occupies its channel regardless of the outcome; the
// caller decides what a loss or corruption means end to end.
func (m *FaultModel) Transmit(now float64) FaultOutcome {
	m.advance(now)
	loss := m.cfg.LossProb
	if m.bad {
		loss = m.badLoss
	}
	if m.rnd.Bool(loss) {
		m.stats.Lost++
		return FrameLost
	}
	if m.rnd.Bool(m.cfg.CorruptProb) {
		m.stats.Corrupted++
		return FrameCorrupted
	}
	m.stats.Delivered++
	return FrameDelivered
}

// InBadState reports whether the chain is in its Bad (outage) state at
// time now. Diagnostics and tests only.
func (m *FaultModel) InBadState(now float64) bool {
	m.advance(now)
	return m.bad
}

// Stats snapshots the frame counters. A nil model reports zeros.
func (m *FaultModel) Stats() FaultStats {
	if m == nil {
		return FaultStats{}
	}
	return m.stats
}

// Register wires the model's frame counters into an observability
// registry under the given series prefix. Only the cumulative counters
// are exposed: sampling the Gilbert–Elliott state itself would advance
// the chain's RNG at sampler times and perturb the run. No-op on a nil
// model (perfect channel) or a disabled registry.
func (m *FaultModel) Register(reg *obs.Registry, prefix string) {
	if m == nil || !reg.Enabled() {
		return
	}
	reg.Gauge(prefix+".frames_lost", func() float64 { return float64(m.stats.Lost) })
	reg.Gauge(prefix+".frames_corrupted", func() float64 { return float64(m.stats.Corrupted) })
	reg.Gauge(prefix+".frames_delivered", func() float64 { return float64(m.stats.Delivered) })
}
