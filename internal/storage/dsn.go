package storage

import (
	"fmt"
	"net/url"
	"strings"
)

// ParseDSN parses a storage DSN of the form
//
//	file:<path>[?sync=group|always|none]
//
// into engine Options. It is the shared grammar of `mccached -backend
// file:...` and `mcsim run -storage file:...`: one spelling, two layers.
// Errors wrap ErrBadOptions.
func ParseDSN(dsn string) (Options, error) {
	scheme, rest, ok := strings.Cut(dsn, ":")
	if !ok || scheme != "file" {
		return Options{}, fmt.Errorf("%w: storage DSN %q (want file:<path>[?sync=group|always|none])",
			ErrBadOptions, dsn)
	}
	path, query, _ := strings.Cut(rest, "?")
	if path == "" {
		return Options{}, fmt.Errorf("%w: storage DSN %q has no path", ErrBadOptions, dsn)
	}
	opts := Options{Path: path}
	if query != "" {
		vals, err := url.ParseQuery(query)
		if err != nil {
			return Options{}, fmt.Errorf("%w: storage DSN query %q: %v", ErrBadOptions, query, err)
		}
		for k := range vals {
			if k != "sync" {
				return Options{}, fmt.Errorf("%w: unknown storage DSN parameter %q (only sync=)", ErrBadOptions, k)
			}
		}
		mode, err := ParseSyncMode(vals.Get("sync"))
		if err != nil {
			return Options{}, err
		}
		opts.Sync = mode
	}
	return opts, nil
}

// OpenDSN opens the store a DSN describes: ParseDSN then Open.
func OpenDSN(dsn string) (*Store, error) {
	opts, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return Open(opts)
}
