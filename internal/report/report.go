// Package report turns an instrumented simulation run — its manifest, the
// obs registry's sampled series, the experiment tables, and an optional
// per-query trace — into two artifacts:
//
//   - manifest.json: everything needed to reproduce the run (full config,
//     seed, git revision, go version, wall time, SHA-256 hashes of the
//     rendered tables, the reproduce command).
//   - report.md: a self-contained Markdown report with paper-figure-style
//     tables and inline SVG timelines (channel utilization, hit-ratio
//     convergence over warm-up, cache occupancy and eviction rate, error
//     rate against frame loss, refresh-time quantiles).
//
// The Markdown body is byte-deterministic in (Config, Seed): environment
// facts (wall time, git revision, go version) live only in the manifest,
// series are iterated in registration order, and every float is rendered
// with one fixed format. Rerunning the same seed reproduces report.md
// exactly — the property the golden-file test pins and the manifest's
// "reproduce" command relies on. See docs/OBSERVABILITY.md.
package report

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TableHash pairs a rendered table with its content hash, letting a reader
// of a manifest verify a reproduction without shipping the tables.
type TableHash struct {
	// Title is the table's title line.
	Title string `json:"title"`
	// SHA256 is the hex digest of the table's rendered text.
	SHA256 string `json:"sha256"`
}

// Manifest records how a report was produced. Everything a rerun needs is
// here; the environment facts (git revision, go version, wall time) are
// deliberately kept out of report.md so its bytes stay reproducible.
type Manifest struct {
	// Experiment names what ran (e.g. "exp1", "run").
	Experiment string `json:"experiment"`
	// Command reproduces the run from a clean checkout.
	Command string `json:"command"`
	// Quick records that an experiment sweep ran on the reduced -quick
	// grids; a replay (mcsim run -config, mcsim report -verify) needs it to
	// regenerate the same tables. Manifests from before this field default
	// to false; replays fall back to scanning Command for "-quick".
	Quick bool `json:"quick,omitempty"`
	// Live records that the measurements come from a live replay over real
	// sockets (cmd/mcload against a running mccached) rather than the
	// simulator; response times are then wall-clock HTTP service times and
	// are not comparable to simulated channel-bound response times
	// (docs/SERVING.md).
	Live bool `json:"live,omitempty"`
	// Seed is the root RNG seed of the instrumented run.
	Seed uint64 `json:"seed"`
	// GitRevision is the source revision ("unknown" outside a checkout).
	GitRevision string `json:"git_revision"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// WallSeconds is the real time the run took (not virtual time).
	WallSeconds float64 `json:"wall_seconds"`
	// Config is the instrumented run's full (defaulted) configuration.
	// PrefetchKappa NaN (the "server default" sentinel) is stored as 0,
	// which Defaults maps back to the same sentinel on replay.
	Config experiment.Config `json:"config"`
	// Tables hashes every rendered experiment table.
	Tables []TableHash `json:"tables"`
	// Series lists every sampled series name (sorted).
	Series []string `json:"series"`
	// Samples is the number of sampler ticks that fired.
	Samples int `json:"samples"`
	// IntervalS is the sampling interval in virtual seconds.
	IntervalS float64 `json:"interval_s"`
	// TraceRows is the number of per-query trace records written (0 when
	// tracing was off).
	TraceRows int `json:"trace_rows"`
}

// GitRevision returns the current checkout's HEAD hash, or "unknown" when
// git (or a repository) is unavailable. Manifest-only: never in report.md.
func GitRevision() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// NewManifest assembles a manifest for one instrumented run: config
// sanitized for JSON, environment stamped, tables hashed, series listed.
// WallSeconds is left for the caller to fill once the run has finished.
func NewManifest(exp, command string, cfg experiment.Config, rep *experiment.Report, reg *obs.Registry) Manifest {
	if math.IsNaN(cfg.PrefetchKappa) {
		cfg.PrefetchKappa = 0 // JSON has no NaN; 0 re-selects the default
	}
	m := Manifest{
		Experiment:  exp,
		Command:     command,
		Seed:        cfg.Seed,
		GitRevision: GitRevision(),
		GoVersion:   runtime.Version(),
		Config:      cfg,
		Series:      reg.SeriesNames(),
		Samples:     reg.Samples(),
		IntervalS:   reg.Interval(),
	}
	if rep != nil {
		for _, t := range rep.Tables {
			m.Tables = append(m.Tables, TableHash{
				Title:  t.Title,
				SHA256: fmt.Sprintf("%x", sha256.Sum256([]byte(t.String()))),
			})
		}
	}
	return m
}

// Input bundles everything the generator consumes.
type Input struct {
	// Manifest describes the run (see NewManifest).
	Manifest Manifest
	// Rep holds the experiment's tables and results (optional).
	Rep *experiment.Report
	// Result is the instrumented representative run's measurements.
	Result experiment.Result
	// Reg is the registry the run sampled into.
	Reg *obs.Registry
	// Trace holds the run's per-query records (optional; written as
	// trace.csv and summarized in the report).
	Trace *trace.Collector
}

// Write renders the report into dir: manifest.json, report.md, and (when a
// trace was collected) trace.csv. The directory is created if needed.
func Write(dir string, in Input) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if in.Trace != nil {
		in.Manifest.TraceRows = in.Trace.Len()
		f, err := os.Create(filepath.Join(dir, "trace.csv"))
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		csv := trace.NewCSV(f)
		for _, r := range in.Trace.Records {
			csv.Query(r)
		}
		if err := csv.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("report: trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	mj, err := json.MarshalIndent(in.Manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("report: manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(mj, '\n'), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "report.md"), Markdown(in), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// Markdown renders the deterministic report body. Same (Config, Seed) →
// same bytes: no timestamps, no environment facts, fixed float formats.
func Markdown(in Input) []byte {
	var b strings.Builder
	cfg := in.Manifest.Config

	fmt.Fprintf(&b, "# Run report: %s\n\n", in.Manifest.Experiment)
	fmt.Fprintf(&b, "Reproduce with `%s` (seed %d). Environment details are in `manifest.json`.\n\n",
		in.Manifest.Command, in.Manifest.Seed)
	if in.Manifest.Live {
		b.WriteString("**Live replay:** measurements come from real HTTP round trips against " +
			"a running `mccached`, not the simulator. Response times are wall-clock " +
			"service times (see `docs/SERVING.md`).\n\n")
	}

	b.WriteString("## Instrumented run\n\n")
	b.WriteString("| parameter | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| config | %s |\n", cfg.String())
	fmt.Fprintf(&b, "| granularity | %s |\n", cfg.Granularity)
	fmt.Fprintf(&b, "| policy | %s |\n", cfg.Policy)
	fmt.Fprintf(&b, "| workload | %s / %s / %s |\n", cfg.QueryKind, cfg.HeatName(), cfg.ArrivalName())
	fmt.Fprintf(&b, "| clients | %d |\n", cfg.NumClients)
	fmt.Fprintf(&b, "| horizon | %s days |\n", fnum(cfg.Days))
	fmt.Fprintf(&b, "| update prob U | %s |\n", fnum(cfg.UpdateProb))
	fmt.Fprintf(&b, "| samples | %d every %s s |\n", in.Manifest.Samples, fnum(in.Manifest.IntervalS))
	b.WriteString("\n")

	b.WriteString("### Headline results\n\n")
	b.WriteString("| metric | value |\n|---|---|\n")
	r := in.Result
	fmt.Fprintf(&b, "| hit ratio | %s |\n", fnum(r.HitRatio))
	fmt.Fprintf(&b, "| mean response | %s s |\n", fnum(r.MeanResponse))
	fmt.Fprintf(&b, "| error rate | %s |\n", fnum(r.ErrorRate))
	fmt.Fprintf(&b, "| queries issued | %d (%d local, %d remote) |\n",
		r.QueriesIssued, r.QueriesLocal, r.QueriesRemote)
	fmt.Fprintf(&b, "| uplink / downlink utilization | %s / %s |\n",
		fnum(r.UplinkUtilization), fnum(r.DownlinkUtilization))
	fmt.Fprintf(&b, "| server buffer hit ratio | %s |\n", fnum(r.Server.BufferHitRatio))
	if cfg.Cells > 1 {
		fmt.Fprintf(&b, "| fleet | %d cells, %d clients |\n", cfg.Cells, cfg.NumClients)
		fmt.Fprintf(&b, "| backbone traffic | %s MB in %d messages |\n",
			fnum(float64(r.BackboneBytes)/1e6), r.BackboneMessages)
		if probes := r.RelayHits + r.RelayMisses; probes > 0 {
			fmt.Fprintf(&b, "| relay cache hit ratio | %s (%d relayed reads) |\n",
				fnum(float64(r.RelayHits)/float64(probes)), r.RelayedReads)
		}
	}
	if r.FramesLost+r.FramesCorrupted > 0 {
		fmt.Fprintf(&b, "| frames lost / corrupted | %d / %d |\n", r.FramesLost, r.FramesCorrupted)
		fmt.Fprintf(&b, "| retries / timeouts / degraded reads | %d / %d / %d |\n",
			r.Retries, r.Timeouts, r.DegradedReads)
	}
	if r.IRReports > 0 {
		fmt.Fprintf(&b, "| IR broadcasts | %d reports, %s MB on air |\n",
			r.IRReports, fnum(float64(r.IRReportBytes)/1e6))
		fmt.Fprintf(&b, "| IR missed / forced revalidations | %d / %d |\n",
			r.IRMissed, r.ForcedRevals)
	}
	if probes := r.PeerHits + r.PeerMisses; probes > 0 {
		fmt.Fprintf(&b, "| peer-served reads | %d of %d cooperative lookups |\n",
			r.PeerHits, probes)
	}
	b.WriteString("\n")

	if in.Rep != nil && len(in.Rep.Tables) > 0 {
		b.WriteString("## Tables\n\n")
		for _, t := range in.Rep.Tables {
			writeMarkdownTable(&b, t)
		}
	}

	// Notes are measured, machine-dependent facts (storage latencies, disk
	// bytes); they ride in the report but are excluded from table hashing.
	if in.Rep != nil && len(in.Rep.Notes) > 0 {
		b.WriteString("## Notes\n\n")
		for _, n := range in.Rep.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
		b.WriteString("\n")
	}

	b.WriteString("## Timelines\n\n")
	writeTimelines(&b, in.Reg)

	if hq := rtQuantileTable(in.Reg); hq != "" {
		b.WriteString("## Refresh-time distribution\n\n")
		b.WriteString(hq)
	}

	if in.Trace != nil && in.Trace.Len() > 0 {
		b.WriteString("## Trace\n\n")
		fmt.Fprintf(&b, "`trace.csv` holds %d per-query records (one row per completed query; the header row names the columns — see internal/trace). Analyze with `go run ./cmd/mctrace trace.csv`.\n\n",
			in.Trace.Len())
	}
	return []byte(b.String())
}

// writeMarkdownTable renders one experiment table as a Markdown pipe table.
func writeMarkdownTable(b *strings.Builder, t *experiment.Table) {
	if t.Title != "" {
		fmt.Fprintf(b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(b, "| %s |\n", strings.Join(row, " | "))
	}
	b.WriteString("\n")
}

// writeTimelines emits the SVG charts, skipping any whose series were not
// registered (e.g. fault charts on perfect channels).
func writeTimelines(b *strings.Builder, reg *obs.Registry) {
	chart := func(caption, title, yLabel string, lines ...chartLine) {
		svg := svgChart(title, yLabel, lines)
		if svg == "" {
			return
		}
		fmt.Fprintf(b, "%s\n\n%s\n\n", caption, svg)
	}

	chart("Windowed busy fraction of the two 19.2 Kbps channels — the contention the paper's response times queue behind.",
		"Channel utilization", "busy fraction per window",
		chartLine{"uplink", windowedUtilization(reg.Series("uplink.utilization"))},
		chartLine{"downlink", windowedUtilization(reg.Series("downlink.utilization"))})

	chart("Pooled client hit ratio and error rate over virtual time: the warm-up convergence the steady-state tables discard.",
		"Hit-ratio convergence", "ratio",
		chartLine{"hit ratio", reg.Series("clients.hit_ratio")},
		chartLine{"error rate", reg.Series("clients.error_rate")})

	chart("Storage-cache occupancy (fraction of pooled capacity) and the fraction of cached items still inside their lease.",
		"Cache occupancy", "fraction",
		chartLine{"occupancy", reg.Series("clients.cache_occupancy")})

	chart("Evictions per second across all clients — the churn the replacement policy sustains once caches fill.",
		"Eviction rate", "evictions/s",
		chartLine{"evictions", windowedRate(reg.Series("clients.evictions"))})

	chart("Frame losses per second against the resulting retries: the reliability layer absorbing channel faults.",
		"Loss and retries", "events/s",
		chartLine{"frames lost (up)", windowedRate(reg.Series("uplink.faults.frames_lost"))},
		chartLine{"frames lost (down)", windowedRate(reg.Series("downlink.faults.frames_lost"))},
		chartLine{"retries", windowedRate(reg.Series("clients.retries"))})

	chart("Coherence traffic beyond leases: reads served from peer caches and whole-cache revalidations forced by missed invalidation reports.",
		"Cooperative and broadcast-IR activity", "events/s",
		chartLine{"peer hits", windowedRate(reg.Series("clients.peer_hits"))},
		chartLine{"forced revalidations", windowedRate(reg.Series("clients.forced_reval"))})

	chart("Quantiles of the refresh-time estimates the server ships (RT = d-bar + beta*s, §3.2).",
		"Refresh-time quantiles", "seconds",
		chartLine{"p50", reg.Series("server.rt_p50")},
		chartLine{"p90", reg.Series("server.rt_p90")})

	chart("Server-side load: disk utilization and buffer hit ratio.",
		"Server load", "ratio",
		chartLine{"disk utilization", reg.Series("server.disk_utilization")},
		chartLine{"buffer hit ratio", reg.Series("server.buffer_hit_ratio")})
}

// rtQuantileTable renders the shipped refresh-time distribution, or "" when
// the histogram is absent or empty.
func rtQuantileTable(reg *obs.Registry) string {
	var rt *obs.Histogram
	for _, h := range reg.Histograms() {
		if h.HistogramName() == "server.refresh_time_s" {
			rt = h
		}
	}
	if rt.Count() == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("| statistic | seconds |\n|---|---|\n")
	fmt.Fprintf(&b, "| count | %d |\n", rt.Count())
	fmt.Fprintf(&b, "| mean | %s |\n", fnum(rt.Mean()))
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		fmt.Fprintf(&b, "| p%g | %s |\n", q*100, fnum(rt.Quantile(q)))
	}
	b.WriteString("\n")
	return b.String()
}

// windowedUtilization converts a sampled cumulative busy fraction u(t) into
// per-window busy fractions: (u_i t_i − u_{i−1} t_{i−1}) / (t_i − t_{i−1}).
// Returns nil when the series is missing or has fewer than two samples.
func windowedUtilization(s *obs.Series) *obs.Series {
	if s == nil || len(s.T) < 2 {
		return nil
	}
	out := &obs.Series{Name: s.Name + ".windowed"}
	for i := 1; i < len(s.T); i++ {
		dt := s.T[i] - s.T[i-1]
		if dt <= 0 {
			continue
		}
		busy := (s.V[i]*s.T[i] - s.V[i-1]*s.T[i-1]) / dt
		out.T = append(out.T, s.T[i])
		out.V = append(out.V, clamp01(busy))
	}
	return out
}

// windowedRate differences a sampled cumulative counter into a per-second
// rate. Returns nil when the series is missing or too short.
func windowedRate(s *obs.Series) *obs.Series {
	if s == nil || len(s.T) < 2 {
		return nil
	}
	out := &obs.Series{Name: s.Name + ".rate"}
	for i := 1; i < len(s.T); i++ {
		dt := s.T[i] - s.T[i-1]
		if dt <= 0 {
			continue
		}
		out.T = append(out.T, s.T[i])
		out.V = append(out.V, (s.V[i]-s.V[i-1])/dt)
	}
	return out
}

// clamp01 bounds accumulated floating-point error in windowed utilization.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
